// Unit and integration tests for simtune: the persistent tuning cache
// (roundtrip, determinism, eviction, key invalidation), the tuner's two
// search strategies, its determinism contract across host-worker
// counts, and the end-to-end auto-field resolution through
// hostrt::DeviceManager.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "apps/tunable.h"
#include "gpusim/arch.h"
#include "gpusim/cost_model.h"
#include "hostrt/device_manager.h"
#include "omprt/target.h"
#include "simtune/cache.h"
#include "simtune/tuner.h"

namespace simtomp::simtune {
namespace {

using gpusim::ArchSpec;
using gpusim::CostModel;

std::string tempPath(const char* name) {
  return ::testing::TempDir() + name;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

TunedShape sampleShape() {
  TunedShape shape;
  shape.teamsMode = omprt::ExecMode::kGeneric;
  shape.parallelMode = omprt::ExecMode::kSPMD;
  shape.numTeams = 64;
  shape.threadsPerTeam = 256;
  shape.simdlen = 8;
  shape.scheduleChunk = 4;
  shape.cycles = 12345;
  shape.trials = 17;
  return shape;
}

// ---------------- Cache keys ----------------

TEST(TuneKeyTest, TripBucketIsLog2Band) {
  EXPECT_EQ(tripBucket(0), 0u);   // unknown
  EXPECT_EQ(tripBucket(1), 1u);
  EXPECT_EQ(tripBucket(2), 2u);
  EXPECT_EQ(tripBucket(3), 2u);
  EXPECT_EQ(tripBucket(4), 3u);
  EXPECT_EQ(tripBucket(4095), 12u);
  EXPECT_EQ(tripBucket(4096), 13u);
}

TEST(TuneKeyTest, ArchFingerprintSeparatesPresets) {
  const std::string a100 = archFingerprint(ArchSpec::nvidiaA100());
  const std::string mi100 = archFingerprint(ArchSpec::amdMI100());
  const std::string tiny = archFingerprint(ArchSpec::testTiny());
  EXPECT_NE(a100, mi100);
  EXPECT_NE(a100, tiny);
  EXPECT_NE(mi100, tiny);
  // Any modeled field must invalidate: warp barriers flip AMD fallback.
  ArchSpec tweaked = ArchSpec::nvidiaA100();
  tweaked.hasWarpLevelBarrier = false;
  EXPECT_NE(archFingerprint(tweaked), a100);
}

TEST(TuneKeyTest, CostFingerprintCoversVersionAndConstants) {
  const CostModel base{};
  const std::string fp = costFingerprint(base);
  EXPECT_EQ(fp.rfind("v1:", 0), 0u) << fp;  // records kCostModelVersion
  // Recalibrating any constant must produce a different fingerprint —
  // a cached decision ranked under other costs would silently lie.
  CostModel recalibrated = base;
  recalibrated.atomicRmw += 1;
  EXPECT_NE(costFingerprint(recalibrated), fp);
  CostModel scaled = base.scaled(2);
  EXPECT_NE(costFingerprint(scaled), fp);
}

TEST(TuneKeyTest, CompositeKeySeparatesBuckets) {
  const ArchSpec arch = ArchSpec::testTiny();
  const CostModel cost{};
  const TuneKey small = makeTuneKey("k", arch, cost, 1000);
  const TuneKey large = makeTuneKey("k", arch, cost, 1'000'000);
  EXPECT_NE(small.composite(), large.composite());
  EXPECT_EQ(small.composite(),
            makeTuneKey("k", arch, cost, 1023).composite());
}

// ---------------- Cache persistence ----------------

TEST(TuneCacheTest, RoundTripsThroughFile) {
  const std::string path = tempPath("simtune_roundtrip.json");
  const TuneKey key =
      makeTuneKey("kern", ArchSpec::testTiny(), CostModel{}, 512);
  {
    TuneCache cache(path);
    cache.insert(key, sampleShape());
    ASSERT_TRUE(cache.save().isOk());
  }
  TuneCache reloaded(path);
  ASSERT_TRUE(reloaded.load().isOk());
  const auto hit = reloaded.lookup(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, sampleShape());
  std::remove(path.c_str());
}

TEST(TuneCacheTest, SavesAreByteIdenticalRegardlessOfInsertOrder) {
  const ArchSpec arch = ArchSpec::testTiny();
  const TuneKey a = makeTuneKey("alpha", arch, CostModel{}, 100);
  const TuneKey b = makeTuneKey("beta", arch, CostModel{}, 200);
  const std::string p1 = tempPath("simtune_det1.json");
  const std::string p2 = tempPath("simtune_det2.json");
  {
    TuneCache cache(p1);
    cache.insert(a, sampleShape());
    cache.insert(b, TunedShape{});
    ASSERT_TRUE(cache.save().isOk());
  }
  {
    TuneCache cache(p2);
    cache.insert(b, TunedShape{});  // reversed insert order
    cache.insert(a, sampleShape());
    ASSERT_TRUE(cache.save().isOk());
  }
  EXPECT_EQ(slurp(p1), slurp(p2));
  std::remove(p1.c_str());
  std::remove(p2.c_str());
}

TEST(TuneCacheTest, MissingFileIsEmptyMalformedIsError) {
  TuneCache missing(tempPath("simtune_nonexistent.json"));
  EXPECT_TRUE(missing.load().isOk());
  EXPECT_EQ(missing.size(), 0u);

  const std::string path = tempPath("simtune_malformed.json");
  {
    std::ofstream out(path);
    out << "{\"simtune_cache\": 1, \"entries\": [nonsense";
  }
  TuneCache malformed(path);
  malformed.insert(makeTuneKey("k", ArchSpec::testTiny(), CostModel{}, 1),
                   sampleShape());
  EXPECT_FALSE(malformed.load().isOk());
  EXPECT_EQ(malformed.size(), 1u);  // failed load leaves entries alone
  std::remove(path.c_str());
}

TEST(TuneCacheTest, EvictByKernelPrefix) {
  const ArchSpec arch = ArchSpec::testTiny();
  TuneCache cache;
  cache.insert(makeTuneKey("spmv", arch, CostModel{}, 1), TunedShape{});
  cache.insert(makeTuneKey("spmv", arch, CostModel{}, 4096), TunedShape{});
  cache.insert(makeTuneKey("su3", arch, CostModel{}, 1), TunedShape{});
  EXPECT_EQ(cache.evict("spmv"), 2u);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.evict(""), 1u);  // empty prefix = everything
  EXPECT_EQ(cache.size(), 0u);
}

// ---------------- Mode resolution ----------------

class TuneModeEnvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const char* old = std::getenv("SIMTOMP_TUNE");
    saved_ = old != nullptr ? std::optional<std::string>(old) : std::nullopt;
  }
  void TearDown() override {
    if (saved_.has_value()) {
      ::setenv("SIMTOMP_TUNE", saved_->c_str(), 1);
    } else {
      ::unsetenv("SIMTOMP_TUNE");
    }
  }

 private:
  std::optional<std::string> saved_;
};

TEST_F(TuneModeEnvTest, AutoConsultsEnv) {
  ::unsetenv("SIMTOMP_TUNE");
  EXPECT_EQ(resolveTuneMode(TuneMode::kAuto).effective, TuneMode::kOff);
  for (const char* v : {"1", "on", "cache"}) {
    ::setenv("SIMTOMP_TUNE", v, 1);
    const TuneResolution r = resolveTuneMode(TuneMode::kAuto);
    EXPECT_EQ(r.effective, TuneMode::kCache) << v;
    EXPECT_STREQ(r.source, "SIMTOMP_TUNE");
  }
  for (const char* v : {"2", "tune", "trial"}) {
    ::setenv("SIMTOMP_TUNE", v, 1);
    EXPECT_EQ(resolveTuneMode(TuneMode::kAuto).effective, TuneMode::kTune)
        << v;
  }
  for (const char* v : {"0", "off", "bogus"}) {
    ::setenv("SIMTOMP_TUNE", v, 1);
    EXPECT_EQ(resolveTuneMode(TuneMode::kAuto).effective, TuneMode::kOff)
        << v;
  }
}

TEST_F(TuneModeEnvTest, ExplicitRequestIgnoresEnv) {
  ::setenv("SIMTOMP_TUNE", "2", 1);
  const TuneResolution r = resolveTuneMode(TuneMode::kOff);
  EXPECT_EQ(r.effective, TuneMode::kOff);
  EXPECT_STREQ(r.source, "explicit");
}

// ---------------- Searching the corpus ----------------

class CorpusTest : public ::testing::Test {
 protected:
  static constexpr uint32_t kWorkers = 4;

  const ArchSpec arch_ = ArchSpec::nvidiaA100();
  const CostModel cost_{};

  Result<TuneOutcome> tuneApp(const apps::TunableApp& app,
                              TuneStrategy strategy, uint32_t workers,
                              std::shared_ptr<TuneCache> cache = nullptr) {
    Tuner tuner(cache != nullptr ? std::move(cache)
                                 : std::make_shared<TuneCache>());
    TuneRequest request;
    request.strategy = strategy;
    request.hostWorkers = workers;
    request.tripCount = app.tripCount;
    return tuner.tune(app.name, arch_, cost_, app.axes, app.trial, request);
  }
};

TEST_F(CorpusTest, ExhaustiveNeverLosesToHandPicked) {
  for (const apps::TunableApp& app :
       apps::tunableCorpus(arch_, /*small=*/true)) {
    // The hand-picked default is a member of the axes, so it was one of
    // the evaluated candidates; the winner can only match or beat it.
    const auto result =
        tuneApp(app, TuneStrategy::kExhaustive, kWorkers);
    ASSERT_TRUE(result.isOk()) << app.name;
    uint64_t hand_picked_cycles = 0;
    for (const auto& [candidate, cycles] : result.value().evaluated) {
      if (candidate == app.handPicked) hand_picked_cycles = cycles;
    }
    ASSERT_GT(hand_picked_cycles, 0u)
        << app.name << ": hand-picked candidate not in the search space";
    EXPECT_LE(result.value().shape.cycles, hand_picked_cycles) << app.name;
  }
}

TEST_F(CorpusTest, HillClimbAgreesWithExhaustiveOnSmallCorpus) {
  for (const apps::TunableApp& app :
       apps::tunableCorpus(arch_, /*small=*/true)) {
    const auto exhaustive =
        tuneApp(app, TuneStrategy::kExhaustive, kWorkers);
    const auto hill = tuneApp(app, TuneStrategy::kHillClimb, kWorkers);
    ASSERT_TRUE(exhaustive.isOk() && hill.isOk()) << app.name;
    EXPECT_EQ(exhaustive.value().shape.cycles, hill.value().shape.cycles)
        << app.name;
    EXPECT_LE(hill.value().trialsRun, exhaustive.value().trialsRun)
        << app.name << ": hill-climb spent more trials than exhaustive";
  }
}

TEST_F(CorpusTest, WinnerIsIdenticalForAnyWorkerCount) {
  const apps::TunableApp app = apps::tunableSpmv(arch_, /*small=*/true);
  for (const TuneStrategy strategy :
       {TuneStrategy::kExhaustive, TuneStrategy::kHillClimb}) {
    const auto serial = tuneApp(app, strategy, 1);
    const auto parallel = tuneApp(app, strategy, 8);
    ASSERT_TRUE(serial.isOk() && parallel.isOk());
    EXPECT_EQ(serial.value().shape, parallel.value().shape)
        << tuneStrategyName(strategy);
  }
}

TEST_F(CorpusTest, WarmCacheRunsZeroTrials) {
  const apps::TunableApp app = apps::tunableIdeal(arch_, /*small=*/true);
  auto cache = std::make_shared<TuneCache>();
  Tuner tuner(cache);
  TuneRequest request;
  request.tripCount = app.tripCount;
  request.hostWorkers = kWorkers;
  const auto cold =
      tuner.tune(app.name, arch_, cost_, app.axes, app.trial, request);
  ASSERT_TRUE(cold.isOk());
  EXPECT_FALSE(cold.value().fromCache);
  EXPECT_GT(tuner.trialLaunches(), 0u);

  const uint64_t launches_after_cold = tuner.trialLaunches();
  const auto warm =
      tuner.tune(app.name, arch_, cost_, app.axes, app.trial, request);
  ASSERT_TRUE(warm.isOk());
  EXPECT_TRUE(warm.value().fromCache);
  EXPECT_EQ(warm.value().shape, cold.value().shape);
  EXPECT_EQ(warm.value().trialsRun, 0u);
  EXPECT_EQ(tuner.trialLaunches(), launches_after_cold);
  EXPECT_EQ(tuner.cacheHits(), 1u);
}

TEST_F(CorpusTest, TuningTwiceProducesByteIdenticalCacheFiles) {
  const std::string p1 = tempPath("simtune_corpus1.json");
  const std::string p2 = tempPath("simtune_corpus2.json");
  for (const std::string& path : {p1, p2}) {
    auto cache = std::make_shared<TuneCache>(path);
    Tuner tuner(cache);
    for (const apps::TunableApp& app :
         {apps::tunableSu3(arch_, true), apps::tunableIdeal(arch_, true)}) {
      TuneRequest request;
      request.tripCount = app.tripCount;
      // Different worker counts per run: the file must not care.
      request.hostWorkers = path == p1 ? 1 : 8;
      ASSERT_TRUE(
          tuner.tune(app.name, arch_, cost_, app.axes, app.trial, request)
              .isOk());
    }
  }
  EXPECT_EQ(slurp(p1), slurp(p2));
  std::remove(p1.c_str());
  std::remove(p2.c_str());
}

TEST_F(CorpusTest, BudgetCapsTrialLaunches) {
  const apps::TunableApp app = apps::tunableSpmv(arch_, /*small=*/true);
  Tuner tuner(std::make_shared<TuneCache>());
  TuneRequest request;
  request.maxTrials = 3;
  request.tripCount = app.tripCount;
  request.hostWorkers = kWorkers;
  const auto result =
      tuner.tune(app.name, arch_, cost_, app.axes, app.trial, request);
  ASSERT_TRUE(result.isOk());
  EXPECT_LE(result.value().trialsRun, 3u);
  EXPECT_LE(tuner.trialLaunches(), 3u);
}

TEST_F(CorpusTest, CheckedTrialsStillTune) {
  // Tuning composes with simcheck: the corpus apps resolve their
  // checking mode from SIMTOMP_CHECK inside each trial launch, so a
  // fatal-mode sweep sanitizes every candidate — and, the apps being
  // race-free, must land on the same winner as an unchecked sweep.
  const apps::TunableApp app = apps::tunableSu3(arch_, /*small=*/true);
  TuneRequest request;
  request.tripCount = app.tripCount;
  request.hostWorkers = kWorkers;

  Tuner plain(std::make_shared<TuneCache>());
  const auto base =
      plain.tune(app.name, arch_, cost_, app.axes, app.trial, request);

  const char* old = std::getenv("SIMTOMP_CHECK");
  ::setenv("SIMTOMP_CHECK", "2", 1);  // fatal: a report fails the trial
  Tuner checked(std::make_shared<TuneCache>());
  const auto under_check =
      checked.tune(app.name, arch_, cost_, app.axes, app.trial, request);
  if (old != nullptr) {
    ::setenv("SIMTOMP_CHECK", old, 1);
  } else {
    ::unsetenv("SIMTOMP_CHECK");
  }

  ASSERT_TRUE(base.isOk() && under_check.isOk());
  EXPECT_EQ(base.value().shape, under_check.value().shape);
}

TEST(TunerTest, AllTrialsFailingSurfacesError) {
  Tuner tuner(std::make_shared<TuneCache>());
  TuneAxes axes = TuneAxes::defaults(ArchSpec::testTiny());
  const TrialFn failing = [](gpusim::Device&, const TuneCandidate&,
                             const simcheck::CheckConfig&)
      -> Result<gpusim::KernelStats> {
    return Status::internal("trial exploded");
  };
  TuneRequest request;
  request.maxTrials = 4;
  const auto result = tuner.tune("boom", ArchSpec::testTiny(), CostModel{},
                                 axes, failing, request);
  EXPECT_FALSE(result.isOk());
}

TEST(TunerTest, EmptyLaunchSpaceIsInvalidArgument) {
  Tuner tuner(std::make_shared<TuneCache>());
  TuneAxes axes;  // all axes empty
  const TrialFn trial = [](gpusim::Device&, const TuneCandidate&,
                           const simcheck::CheckConfig&)
      -> Result<gpusim::KernelStats> { return gpusim::KernelStats{}; };
  EXPECT_FALSE(tuner
                   .tune("empty", ArchSpec::testTiny(), CostModel{}, axes,
                         trial, TuneRequest{})
                   .isOk());
}

// ---------------- Candidate enumeration ----------------

TEST(TuneAxesTest, EnumerateDropsInvalidCombinations) {
  ArchSpec arch = ArchSpec::amdMI100();
  ASSERT_FALSE(arch.hasWarpLevelBarrier);
  TuneAxes axes;
  axes.teamsModes = {omprt::ExecMode::kSPMD};
  axes.parallelModes = {omprt::ExecMode::kGeneric};
  axes.numTeams = {8};
  axes.threadsPerTeam = {arch.warpSize, arch.warpSize + 1};
  axes.simdlens = {1, 2};
  axes.scheduleChunks = {0};
  const auto all = axes.enumerate(arch);
  // Non-warp-multiple widths are dropped, and generic-SIMD simdlen 2
  // would be degraded to 1 by the runtime (no warp barriers) so only
  // the simdlen-1 candidate survives.
  ASSERT_EQ(all.size(), 1u);
  EXPECT_EQ(all[0].threadsPerTeam, arch.warpSize);
  EXPECT_EQ(all[0].simdlen, 1u);
}

TEST(TuneAxesTest, DefaultsEnumerateNonEmptyForPresets) {
  for (const ArchSpec& arch :
       {ArchSpec::nvidiaA100(), ArchSpec::amdMI100(), ArchSpec::testTiny()}) {
    const auto all = TuneAxes::defaults(arch).enumerate(arch);
    EXPECT_FALSE(all.empty()) << arch.name;
  }
}

// ---------------- End-to-end through DeviceManager ----------------

TEST(DeviceManagerTuningTest, SyncLaunchTunesThenHitsCache) {
  hostrt::DeviceManager mgr({ArchSpec::testTiny()});
  auto cache = std::make_shared<TuneCache>();
  auto tuner = std::make_shared<Tuner>(cache);
  mgr.setDefaultTuner(tuner, TuneMode::kTune);

  omprt::TargetConfig config;
  config.tuneKey = "e2e";
  config.numTeams = 2;
  config.threadsPerTeam = 0;  // auto: let the tuner decide
  config.simdlen = 0;         // auto
  config.tripCount = 64;

  const omprt::TargetRegionFn region = [](omprt::OmpContext& ctx) {
    ctx.gpu().work(5);
  };
  const auto first = mgr.launchOn(0, config, region);
  ASSERT_TRUE(first.isOk()) << first.status().toString();
  EXPECT_GT(tuner->trialLaunches(), 0u);
  EXPECT_EQ(cache->size(), 1u);

  const uint64_t launches_after_first = tuner->trialLaunches();
  const auto second = mgr.launchOn(0, config, region);
  ASSERT_TRUE(second.isOk());
  // Warm cache: the relaunch resolved without a single extra trial.
  EXPECT_EQ(tuner->trialLaunches(), launches_after_first);
  EXPECT_GE(tuner->cacheHits(), 1u);

  // The observable effective config now carries the cached winner.
  const omprt::TargetConfig effective = mgr.effectiveConfig(0, config);
  EXPECT_NE(effective.threadsPerTeam, 0u);
  EXPECT_NE(effective.simdlen, 0u);
  EXPECT_EQ(effective.numTeams, 2u);  // explicit field untouched
}

TEST(DeviceManagerTuningTest, AsyncLaunchNeverRunsTrials) {
  hostrt::DeviceManager mgr({ArchSpec::testTiny()});
  auto tuner = std::make_shared<Tuner>(std::make_shared<TuneCache>());
  mgr.setDefaultTuner(tuner, TuneMode::kTune);

  omprt::TargetConfig config;
  config.tuneKey = "e2e_async";
  config.numTeams = 1;
  config.threadsPerTeam = 0;
  config.tripCount = 32;

  auto future = mgr.launchOnAsync(0, config,
                                  [](omprt::OmpContext& ctx) {
                                    ctx.gpu().work(1);
                                  });
  ASSERT_TRUE(future.get().isOk());
  // Deferred launches degrade kTune to cache-only: heuristics filled
  // the auto fields, no trial launch happened.
  EXPECT_EQ(tuner->trialLaunches(), 0u);
}

}  // namespace
}  // namespace simtomp::simtune
