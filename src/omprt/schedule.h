// Worksharing loop schedules.
//
// The paper's new loop API (section 7) is meant to grow into the full
// OpenMP schedule surface; we implement the three classic ones for
// `for` worksharing across SIMD groups:
//
//   kStaticCyclic  — iteration i goes to group i % numGroups (the
//                    default, matches __simd_loop's lane mapping);
//   kStaticChunked — contiguous blocks of ceil(trip/numGroups);
//   kDynamic       — groups pull chunks from a team-shared atomic
//                    counter. Requires an SPMD parallel region (the
//                    init/flush protocol needs team barriers, which a
//                    generic-mode region cannot execute — its workers
//                    are parked in the warp state machine); in generic
//                    mode the runtime falls back to static cyclic.
#pragma once

#include <cstdint>

namespace simtomp::omprt {

enum class ForSchedule : uint8_t {
  kStaticCyclic,
  kStaticChunked,
  kDynamic,
};

struct ScheduleClause {
  ForSchedule kind = ForSchedule::kStaticCyclic;
  /// Chunk size for kDynamic (iterations per grab); 0 = 1.
  uint64_t chunk = 0;
};

}  // namespace simtomp::omprt
