#include "simserve/trace.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

#include "gpusim/trace.h"
#include "simprof/metrics.h"
#include "simserve/service.h"

namespace simtomp::simserve {

namespace {

/// Histogram bucket upper bound: 4^(i+1) (mirrors simprof's registry).
uint64_t bucketBound(size_t i) { return uint64_t{1} << (2 * (i + 1)); }

size_t bucketFor(uint64_t value) {
  for (size_t i = 0; i + 1 < LatencyHistogram::kBuckets; ++i) {
    if (value <= bucketBound(i)) return i;
  }
  return LatencyHistogram::kBuckets - 1;
}

std::string boundText(uint64_t bound) {
  if (bound == std::numeric_limits<uint64_t>::max()) return "inf";
  return std::to_string(bound);
}

std::string deadlineText(uint64_t deadline) {
  return deadline == kNoDeadline ? "none" : std::to_string(deadline);
}

}  // namespace

void LatencyHistogram::observe(uint64_t value) {
  ++buckets_[bucketFor(value)];
  ++count_;
  sum_ += value;
}

uint64_t LatencyHistogram::quantileUpperBound(double q) const {
  if (count_ == 0) return 0;
  const auto rank = static_cast<uint64_t>(
      std::max(1.0, std::ceil(q * static_cast<double>(count_))));
  uint64_t cumulative = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    cumulative += buckets_[i];
    if (cumulative >= rank) {
      return i + 1 < kBuckets ? bucketBound(i)
                              : std::numeric_limits<uint64_t>::max();
    }
  }
  return std::numeric_limits<uint64_t>::max();
}

std::string LatencyHistogram::toString() const {
  std::string out = "count=" + std::to_string(count_) +
                    " sum=" + std::to_string(sum_) +
                    " p50<=" + boundText(quantileUpperBound(0.5)) +
                    " p99<=" + boundText(quantileUpperBound(0.99));
  return out;
}

std::string_view deadlineVerdictName(DeadlineVerdict verdict) {
  switch (verdict) {
    case DeadlineVerdict::kNone: return "none";
    case DeadlineVerdict::kMiss: return "miss";
    case DeadlineVerdict::kHit: return "hit";
  }
  return "unknown";
}

ServiceTracer::ServiceTracer(TraceConfig config)
    : config_(std::move(config)),
      canonical_(config_.ringCapacity),
      physical_(config_.ringCapacity) {}

void ServiceTracer::recordCanonical(uint64_t tick, std::string category,
                                    std::string detail,
                                    std::string physicalDetail) {
  auto& metrics = simprof::MetricsRegistry::global();
  metrics.add(simprof::metric::kServeTraceEventsTotal);
  if (canonical_.record(tick, std::move(category), std::move(detail),
                        std::move(physicalDetail))) {
    metrics.add(simprof::metric::kServeTraceDroppedTotal);
  }
}

void ServiceTracer::recordPhysical(uint64_t tick, std::string category,
                                   std::string detail) {
  auto& metrics = simprof::MetricsRegistry::global();
  metrics.add(simprof::metric::kServeTraceEventsTotal);
  if (physical_.record(tick, std::move(category), std::move(detail))) {
    metrics.add(simprof::metric::kServeTraceDroppedTotal);
  }
}

void ServiceTracer::noteAdmitted(uint64_t id, const std::string& tenant,
                                 const std::string& fingerprint,
                                 uint32_t priority, uint64_t deadline,
                                 uint64_t queueAhead) {
  if (id >= requests_.size()) requests_.resize(id + 1);
  RequestTrace& r = requests_[id];
  r.tenant = tenant;
  r.fingerprint = fingerprint;
  r.priority = priority;
  r.deadline = deadline;
  r.queueAhead = queueAhead;
  ++burn_[tenant].admitted;
  if (tenantTrack_.count(tenant) == 0) {
    tenantTrack_.emplace(tenant, static_cast<uint32_t>(trackTenant_.size()));
    trackTenant_.push_back(tenant);
  }
  recordCanonical(0, "admit",
                  "req=" + std::to_string(id) + " tenant=" + tenant +
                      " fp=" + fingerprint +
                      " prio=" + std::to_string(priority) +
                      " deadline=" + deadlineText(deadline) +
                      " ahead=" + std::to_string(queueAhead));
}

void ServiceTracer::noteShedAtSubmit(const std::string& tenant,
                                     std::string_view reason,
                                     bool deadlineShed) {
  TenantBurn& b = burn_[tenant];
  ++b.shedAtSubmit;
  if (deadlineShed) ++b.deadlineShed;
  recordCanonical(0, "shed",
                  "tenant=" + tenant + " reason=" + std::string(reason));
}

void ServiceTracer::noteEvicted(uint64_t id) {
  RequestTrace& r = requests_[id];
  r.end = EndState::kEvicted;
  r.code = StatusCode::kResourceExhausted;
  ++burn_[r.tenant].evicted;
  recordCanonical(0, "evict",
                  "req=" + std::to_string(id) + " tenant=" + r.tenant);
}

void ServiceTracer::noteDispatched(uint64_t id, bool batchFollower,
                                   uint64_t queueDelayCycles, uint32_t device,
                                   uint32_t shard) {
  RequestTrace& r = requests_[id];
  r.dispatched = true;
  r.batchFollower = batchFollower;
  r.dispatchTick = queueDelayCycles;
  r.device = device;
  r.shard = shard;
  queueDelay_.observe(queueDelayCycles);
  recordCanonical(queueDelayCycles, "dispatch",
                  "req=" + std::to_string(id) +
                      " role=" + (batchFollower ? "follower" : "leader") +
                      " delay=" + std::to_string(queueDelayCycles),
                  "device=" + std::to_string(device) +
                      " shard=" + std::to_string(shard));
}

void ServiceTracer::noteBatch(const std::string& fingerprint, uint32_t size) {
  ++batchesTotal_;
  const size_t cell =
      std::min<size_t>(size == 0 ? 0 : size - 1, batchSize_.size() - 1);
  ++batchSize_[cell];
  recordCanonical(0, "batch",
                  "fp=" + fingerprint + " size=" + std::to_string(size));
}

void ServiceTracer::noteMigrated(uint64_t id, uint32_t hop,
                                 uint64_t backoffCycles,
                                 uint64_t latencySoFar, uint32_t fromDevice,
                                 uint32_t toDevice) {
  RequestTrace& r = requests_[id];
  HopTrace h;
  h.hop = hop;
  h.backoffCycles = backoffCycles;
  h.tick = latencySoFar;
  h.fromDevice = fromDevice;
  h.toDevice = toDevice;
  r.hops.push_back(h);
  ++burn_[r.tenant].migratedHops;
  recordCanonical(latencySoFar, "migrate",
                  "req=" + std::to_string(id) + " hop=" + std::to_string(hop) +
                      " backoff=" + std::to_string(backoffCycles),
                  "from_device=" + std::to_string(fromDevice) +
                      " to_device=" + std::to_string(toDevice));
}

void ServiceTracer::noteRetryExhausted(uint64_t id, uint32_t hops) {
  const RequestTrace& r = requests_[id];
  const uint64_t tick = r.hops.empty() ? r.dispatchTick : r.hops.back().tick;
  recordCanonical(tick, "retry_exhausted",
                  "req=" + std::to_string(id) +
                      " hops=" + std::to_string(hops));
}

void ServiceTracer::noteBreakerTrip(const std::string& tenant,
                                    uint32_t device) {
  recordCanonical(0, "breaker_trip", "tenant=" + tenant,
                  "device=" + std::to_string(device));
}

void ServiceTracer::noteRetired(uint64_t id, bool ok, StatusCode code,
                                uint64_t latency, uint64_t cycles,
                                DeadlineVerdict verdict) {
  RequestTrace& r = requests_[id];
  r.end = ok ? EndState::kDone : EndState::kFailed;
  r.code = code;
  r.latency = latency;
  r.cycles = cycles;
  r.verdict = verdict;
  TenantBurn& b = burn_[r.tenant];
  if (ok) {
    ++b.completed;
    if (verdict == DeadlineVerdict::kHit) ++b.deadlineHit;
    if (verdict == DeadlineVerdict::kMiss) ++b.deadlineMiss;
  } else {
    ++b.failed;
  }
  recordCanonical(
      latency, "retire",
      "req=" + std::to_string(id) + " outcome=" + (ok ? "done" : "failed") +
          " status=" + std::string(statusCodeName(code)) +
          " latency=" + std::to_string(latency) +
          " cycles=" + std::to_string(cycles) +
          " verdict=" + std::string(deadlineVerdictName(verdict)));
}

void ServiceTracer::noteEpoch(uint64_t epoch) {
  recordCanonical(epoch, "epoch", "epoch=" + std::to_string(epoch));
}

void ServiceTracer::noteBreakerOpened(uint32_t device, uint64_t epoch) {
  recordPhysical(epoch, "breaker_open",
                 "device=" + std::to_string(device) +
                     " epoch=" + std::to_string(epoch));
}

void ServiceTracer::noteBreakerHalfOpen(uint32_t device, uint64_t epoch) {
  recordPhysical(epoch, "breaker_half_open",
                 "device=" + std::to_string(device) +
                     " epoch=" + std::to_string(epoch));
}

void ServiceTracer::notePanicRevival(uint32_t device, uint64_t epoch) {
  recordPhysical(epoch, "panic_revival",
                 "device=" + std::to_string(device) +
                     " epoch=" + std::to_string(epoch));
}

void ServiceTracer::noteDeviceRevived(uint32_t device, uint64_t epoch) {
  recordPhysical(epoch, "device_revived",
                 "device=" + std::to_string(device) +
                     " epoch=" + std::to_string(epoch));
}

void ServiceTracer::onFailureTrigger(std::string_view reason) {
  if (config_.autoDumpPath.empty()) return;
  // Rewrite (not append): the recorder semantics are "the window
  // around the latest failure", which is what a post-mortem wants.
  (void)dumpFlightToFile(config_.autoDumpPath, reason);
}

void ServiceTracer::writeTimelineLocked(std::ostream& out, uint64_t id,
                                        bool physical) const {
  const RequestTrace& r = requests_[id];
  out << "req " << id << " tenant=" << r.tenant << " fp=" << r.fingerprint
      << " prio=" << r.priority << " deadline=" << deadlineText(r.deadline)
      << " ahead=" << r.queueAhead << "\n";
  out << "  +0 admitted\n";
  if (r.end == EndState::kEvicted) {
    out << "  +0 evicted status=" << statusCodeName(r.code) << "\n";
    return;
  }
  if (r.dispatched) {
    out << "  +" << r.dispatchTick << " dispatched role="
        << (r.batchFollower ? "follower" : "leader");
    if (physical) {
      out << " device=" << r.device << " shard=" << r.shard;
    }
    out << "\n";
  }
  for (const HopTrace& h : r.hops) {
    out << "  +" << h.tick << " migrated hop=" << h.hop
        << " backoff=" << h.backoffCycles;
    if (physical) {
      out << " from_device=" << h.fromDevice << " to_device=" << h.toDevice;
    }
    out << "\n";
  }
  if (r.end == EndState::kDone || r.end == EndState::kFailed) {
    out << "  +" << r.latency << " retired outcome="
        << (r.end == EndState::kDone ? "done" : "failed")
        << " status=" << statusCodeName(r.code) << " latency=" << r.latency
        << " cycles=" << r.cycles
        << " verdict=" << deadlineVerdictName(r.verdict) << "\n";
  }
}

void ServiceTracer::dumpTimelines(std::ostream& out, bool physical) const {
  out << "# simserve trace v1 requests=" << requests_.size() << "\n";
  for (uint64_t id = 0; id < requests_.size(); ++id) {
    writeTimelineLocked(out, id, physical);
  }
}

Status ServiceTracer::dumpTimeline(std::ostream& out, uint64_t id,
                                   bool physical) const {
  if (id >= requests_.size()) {
    return Status::invalidArgument("no trace for request id " +
                                   std::to_string(id));
  }
  writeTimelineLocked(out, id, physical);
  return Status::ok();
}

void ServiceTracer::dumpTenantSummary(std::ostream& out) const {
  out << "# simserve slo burn v1\n";
  for (const auto& [tenant, b] : burn_) {
    // Burn: of everything the SLO covered (scored completions plus
    // deadline-carrying arrivals shed at admission), how much did the
    // tenant lose? Integer permille keeps the line byte-stable.
    const uint64_t covered = b.deadlineHit + b.deadlineMiss + b.deadlineShed;
    const uint64_t lost = b.deadlineMiss + b.deadlineShed;
    const uint64_t permille = covered == 0 ? 0 : (1000 * lost) / covered;
    out << "tenant " << tenant << ": admitted=" << b.admitted
        << " shed_at_submit=" << b.shedAtSubmit
        << " deadline_shed=" << b.deadlineShed << " evicted=" << b.evicted
        << " completed=" << b.completed << " failed=" << b.failed
        << " migrated_hops=" << b.migratedHops
        << " deadline_hit=" << b.deadlineHit
        << " deadline_miss=" << b.deadlineMiss
        << " burn_permille=" << permille << "\n";
  }
}

void ServiceTracer::dumpHistograms(std::ostream& out) const {
  out << "# simserve trace histograms v1\n";
  out << "queue_delay " << queueDelay_.toString() << "\n";
  out << "batch_size total=" << batchesTotal_;
  for (size_t i = 0; i < batchSize_.size(); ++i) {
    if (batchSize_[i] == 0) continue;
    out << " " << (i + 1) << (i + 1 == batchSize_.size() ? "+" : "") << "="
        << batchSize_[i];
  }
  out << "\n";
}

void ServiceTracer::dumpFlight(std::ostream& out, bool physical,
                               std::string_view trigger) const {
  out << "# simserve flight recorder v1 trigger=" << trigger
      << " events=" << canonical_.size()
      << " recorded=" << canonical_.recorded()
      << " dropped=" << canonical_.dropped() << "\n";
  canonical_.dump(out, physical);
  if (physical) {
    out << "# physical ring events=" << physical_.size()
        << " recorded=" << physical_.recorded()
        << " dropped=" << physical_.dropped() << "\n";
    physical_.dump(out, /*physical=*/true);
  }
}

Status ServiceTracer::dumpFlightToFile(const std::string& path,
                                       std::string_view trigger) const {
  std::ofstream out(path);
  if (!out) {
    return Status::invalidArgument("cannot open flight dump file: " + path);
  }
  dumpFlight(out, /*physical=*/true, trigger);
  if (!out.good()) {
    return Status::internal("I/O error writing flight dump: " + path);
  }
  return Status::ok();
}

void ServiceTracer::exportPerfetto(gpusim::TraceRecorder& recorder) const {
  // One track per tenant (named after it), one span per admitted
  // request. The span's start is a deterministic function of the
  // admission sequence — requests are laid out per tenant without
  // overlap so Perfetto renders a readable lane — and its duration is
  // the request's modeled latency; migrations become instants and the
  // queue depth at admission a counter track. Every coordinate is
  // logical or modeled, so the exported JSON is itself byte-identical
  // across reruns, worker counts and shard counts.
  for (uint32_t track = 0; track < trackTenant_.size(); ++track) {
    recorder.nameTrack(track, trackTenant_[track]);
  }
  std::vector<uint64_t> cursor(trackTenant_.size(), 0);
  for (uint64_t id = 0; id < requests_.size(); ++id) {
    const RequestTrace& r = requests_[id];
    const auto it = tenantTrack_.find(r.tenant);
    if (it == tenantTrack_.end()) continue;
    const uint32_t track = it->second;
    recorder.recordCounter("queued", id * kQueueSlotCycles, r.queueAhead + 1);
    if (r.end == EndState::kEvicted || !r.dispatched) continue;
    const uint64_t start =
        std::max(cursor[track], id * kQueueSlotCycles);
    const uint64_t duration = std::max<uint64_t>(r.latency, 1);
    cursor[track] = start + duration;
    std::string name = "req " + std::to_string(id) + " " + r.fingerprint;
    if (r.end == EndState::kFailed) {
      name += " [failed " + std::string(statusCodeName(r.code)) + "]";
    }
    recorder.recordSpan(track, std::move(name), start, duration);
    for (const HopTrace& h : r.hops) {
      recorder.recordInstant("migrate req " + std::to_string(id) + " hop " +
                                 std::to_string(h.hop),
                             start + h.tick);
    }
  }
}

}  // namespace simtomp::simserve
