#include "simcheck/checker.h"

#include <algorithm>
#include <sstream>

namespace simtomp::simcheck {

namespace {

std::string hexMask(LaneMask mask) {
  std::ostringstream out;
  out << "0x" << std::hex << mask;
  return out.str();
}

std::string flagNames(uint8_t flags) {
  std::string out;
  if (flags & GlobalFootprint::kRead) out += "read";
  if (flags & GlobalFootprint::kWrite) {
    if (!out.empty()) out += "+";
    out += "write";
  }
  if (flags & GlobalFootprint::kAtomic) {
    if (!out.empty()) out += "+";
    out += "atomic";
  }
  return out;
}

}  // namespace

BlockChecker::BlockChecker(const CheckConfig& config, uint32_t block_id,
                           uint32_t num_threads, uint32_t warp_size)
    : config_(config),
      block_id_(block_id),
      num_threads_(num_threads),
      warp_size_(warp_size) {
  report_.maxDiagnostics = config.maxDiagnostics;
  vc_.resize(num_threads);
  for (uint32_t t = 0; t < num_threads; ++t) {
    vc_[t].assign(num_threads, 0);
    // Start each clock at 1 so an initial epoch (clock 1) is not
    // vacuously ordered before other threads (whose entry is 0).
    vc_[t][t] = 1;
  }
  thread_state_.assign(num_threads, ThreadState::kRunning);
  blocked_at_.assign(num_threads, nullptr);
}

void BlockChecker::setSharedRange(const void* base, size_t bytes) {
  shared_base_ = static_cast<const std::byte*>(base);
  shared_bytes_ = bytes;
}

void BlockChecker::setGlobalRange(const void* base, size_t bytes) {
  global_base_ = static_cast<const std::byte*>(base);
  global_bytes_ = bytes;
}

void BlockChecker::recordEpoch(std::vector<Epoch>& list, uint32_t tid) {
  for (Epoch& e : list) {
    if (e.tid == tid) {
      e.clock = vc_[tid][tid];
      return;
    }
  }
  list.push_back(now(tid));
}

void BlockChecker::raceDiag(uint32_t tid, uint32_t other, MemSpace space,
                            uint64_t granule, const char* what) {
  Diagnostic d;
  d.kind = DiagKind::kDataRace;
  d.blockId = block_id_;
  d.threadId = tid;
  d.otherThreadId = other;
  d.space = space;
  d.address = space == MemSpace::kSynthetic
                  ? granule
                  : granule * static_cast<uint64_t>(kGranuleBytes);
  d.detail = what;
  report_.add(std::move(d));
}

void BlockChecker::touchCell(std::unordered_map<uint64_t, Cell>& cells,
                             uint64_t granule, uint32_t tid, AccessKind kind,
                             MemSpace space, bool check_uninit) {
  Cell& cell = cells[granule];
  switch (kind) {
    case AccessKind::kRead:
      if (check_uninit && cell.write.tid == kNoThread &&
          cell.atomics.empty() && !cell.uninit_reported) {
        cell.uninit_reported = true;
        Diagnostic d;
        d.kind = DiagKind::kUninitSharedRead;
        d.blockId = block_id_;
        d.threadId = tid;
        d.space = space;
        d.address = granule * kGranuleBytes;
        d.detail = "read of shared memory never written by this block";
        report_.add(std::move(d));
      }
      if (cell.write.tid != kNoThread && cell.write.tid != tid &&
          !happensBefore(cell.write, tid)) {
        raceDiag(tid, cell.write.tid, space, granule,
                 "read not ordered after write");
      }
      for (const Epoch& a : cell.atomics) {
        if (a.tid != tid && !happensBefore(a, tid)) {
          raceDiag(tid, a.tid, space, granule,
                   "read not ordered after atomic update");
        }
      }
      recordEpoch(cell.reads, tid);
      break;
    case AccessKind::kWrite:
      if (cell.write.tid != kNoThread && cell.write.tid != tid &&
          !happensBefore(cell.write, tid)) {
        raceDiag(tid, cell.write.tid, space, granule,
                 "write not ordered after write");
      }
      for (const Epoch& r : cell.reads) {
        if (r.tid != tid && !happensBefore(r, tid)) {
          raceDiag(tid, r.tid, space, granule, "write not ordered after read");
        }
      }
      for (const Epoch& a : cell.atomics) {
        if (a.tid != tid && !happensBefore(a, tid)) {
          raceDiag(tid, a.tid, space, granule,
                   "write not ordered after atomic update");
        }
      }
      // A plain write ordered after everything supersedes the history:
      // later accesses ordered after this write are (transitively)
      // ordered after everything it saw.
      cell.write = now(tid);
      cell.reads.clear();
      cell.atomics.clear();
      break;
    case AccessKind::kAtomic:
      if (cell.write.tid != kNoThread && cell.write.tid != tid &&
          !happensBefore(cell.write, tid)) {
        raceDiag(tid, cell.write.tid, space, granule,
                 "atomic update not ordered after plain write");
      }
      for (const Epoch& r : cell.reads) {
        if (r.tid != tid && !happensBefore(r, tid)) {
          raceDiag(tid, r.tid, space, granule,
                   "atomic update not ordered after plain read");
        }
      }
      recordEpoch(cell.atomics, tid);
      break;
  }
}

bool BlockChecker::batchDedupesAccess(std::unordered_set<uint64_t>& reads,
                                      std::unordered_set<uint64_t>& writes,
                                      uint64_t granule, AccessKind kind) {
  if (!batch_active_) return false;
  if (kind == AccessKind::kRead) {
    if (writes.count(granule) != 0) return false;
    // insert() returns false on a repeat: the batch already ran the
    // representative happens-before check for this granule.
    return !reads.insert(granule).second;
  }
  writes.insert(granule);
  return false;
}

void BlockChecker::beginConvergentBatch() {
  batch_active_ = true;
  batch_reads_shared_.clear();
  batch_writes_shared_.clear();
  batch_reads_global_.clear();
  batch_writes_global_.clear();
}

void BlockChecker::endConvergentBatch() { batch_active_ = false; }

void BlockChecker::onAccess(uint32_t tid, const void* ptr, size_t bytes,
                            AccessKind kind, bool block_private) {
  if (bytes == 0) return;
  const std::byte* p = static_cast<const std::byte*>(ptr);
  if (shared_base_ != nullptr && p >= shared_base_ &&
      p < shared_base_ + shared_bytes_) {
    const uint64_t offset = static_cast<uint64_t>(p - shared_base_);
    const uint64_t first = offset / kGranuleBytes;
    const uint64_t last = (offset + bytes - 1) / kGranuleBytes;
    for (uint64_t g = first; g <= last; ++g) {
      if (batchDedupesAccess(batch_reads_shared_, batch_writes_shared_, g,
                             kind)) {
        continue;
      }
      touchCell(shared_cells_, g, tid, kind, MemSpace::kShared,
                /*check_uninit=*/true);
    }
    return;
  }
  if (global_base_ != nullptr && p >= global_base_ &&
      p < global_base_ + global_bytes_) {
    const uint64_t offset = static_cast<uint64_t>(p - global_base_);
    const uint64_t first = offset / kGranuleBytes;
    const uint64_t last = (offset + bytes - 1) / kGranuleBytes;
    const uint8_t bit = kind == AccessKind::kRead    ? GlobalFootprint::kRead
                        : kind == AccessKind::kWrite ? GlobalFootprint::kWrite
                                                     : GlobalFootprint::kAtomic;
    for (uint64_t g = first; g <= last; ++g) {
      if (!block_private) footprint_.granules[g] |= bit;
      if (batchDedupesAccess(batch_reads_global_, batch_writes_global_, g,
                             kind)) {
        continue;
      }
      touchCell(global_cells_, g, tid, kind, MemSpace::kGlobal,
                /*check_uninit=*/false);
    }
    return;
  }
  // Pointer outside the simulated arenas (host/stack memory the kernel
  // wrapped in a span for convenience): not checkable, ignore.
}

void BlockChecker::onSyntheticAccess(uint32_t tid, uint64_t key,
                                     bool is_write) {
  touchCell(synthetic_cells_, key, tid,
            is_write ? AccessKind::kWrite : AccessKind::kRead,
            MemSpace::kSynthetic, /*check_uninit=*/false);
}

void BlockChecker::onLockAcquire(uint32_t tid, uint64_t lock_key) {
  auto it = lock_clocks_.find(lock_key);
  if (it == lock_clocks_.end()) return;  // first acquisition
  const std::vector<uint32_t>& lock_vc = it->second;
  for (uint32_t i = 0; i < num_threads_; ++i) {
    vc_[tid][i] = std::max(vc_[tid][i], lock_vc[i]);
  }
}

void BlockChecker::onLockRelease(uint32_t tid, uint64_t lock_key) {
  lock_clocks_[lock_key] = vc_[tid];
  vc_[tid][tid] += 1;
}

void BlockChecker::releaseSync(const void* /*sync_key*/, PendingSync& sync) {
  std::vector<uint32_t> joined(num_threads_, 0);
  for (uint32_t p : sync.participants) {
    for (uint32_t i = 0; i < num_threads_; ++i) {
      joined[i] = std::max(joined[i], vc_[p][i]);
    }
  }
  for (uint32_t p : sync.participants) {
    vc_[p] = joined;
    vc_[p][p] += 1;
    thread_state_[p] = ThreadState::kRunning;
    blocked_at_[p] = nullptr;
  }
}

void BlockChecker::onSyncArrive(uint32_t tid, const void* sync_key,
                                uint32_t base_tid, LaneMask mask,
                                uint32_t warp_id, bool is_block) {
  auto [it, inserted] = pending_.try_emplace(sync_key);
  PendingSync& sync = it->second;
  if (inserted) {
    sync.is_block = is_block;
    sync.mask = mask;
    sync.warp_id = warp_id;
    if (is_block) {
      sync.participants.resize(num_threads_);
      for (uint32_t t = 0; t < num_threads_; ++t) sync.participants[t] = t;
    } else {
      for (unsigned lane = 0; lane < 64; ++lane) {
        if (laneIn(mask, lane)) sync.participants.push_back(base_tid + lane);
      }
    }
  }

  // Inconsistent warp masks: two coexisting warp syncs of the same warp
  // whose lane sets overlap but differ can never both release — the
  // shared lanes are each required at two places at once.
  if (!is_block) {
    for (const auto& [other_key, other] : pending_) {
      if (other_key == sync_key || other.is_block ||
          other.warp_id != warp_id) {
        continue;
      }
      if ((other.mask & mask) != 0 && other.mask != mask) {
        const auto pair = std::minmax(other_key, sync_key);
        if (mask_pair_reported_.insert({pair.first, pair.second}).second) {
          Diagnostic d;
          d.kind = DiagKind::kInconsistentMask;
          d.blockId = block_id_;
          d.threadId = tid;
          d.otherThreadId =
              other.arrived.empty() ? kNoThread : other.arrived.front();
          d.detail = "warp " + std::to_string(warp_id) +
                     " syncs with overlapping masks " + hexMask(mask) +
                     " and " + hexMask(other.mask);
          report_.add(std::move(d));
        }
      }
    }
  }

  // A participant that already returned from the kernel can never
  // arrive; this barrier is divergent.
  for (uint32_t p : sync.participants) {
    if (thread_state_[p] == ThreadState::kFinished) {
      if (divergence_reported_.insert(sync_key).second) {
        Diagnostic d;
        d.kind = DiagKind::kBarrierDivergence;
        d.blockId = block_id_;
        d.threadId = tid;
        d.otherThreadId = p;
        d.detail = std::string(sync.is_block ? "block" : "warp") +
                   " barrier expects thread " + std::to_string(p) +
                   ", which already returned from the kernel";
        report_.add(std::move(d));
      }
      break;
    }
  }

  sync.arrived.push_back(tid);
  if (sync.arrived.size() == sync.participants.size()) {
    releaseSync(sync_key, sync);
    pending_.erase(it);
  } else {
    thread_state_[tid] = ThreadState::kBlocked;
    blocked_at_[tid] = sync_key;
  }
}

void BlockChecker::onThreadFinish(uint32_t tid) {
  thread_state_[tid] = ThreadState::kFinished;
  for (const auto& [key, sync] : pending_) {
    if (std::find(sync.participants.begin(), sync.participants.end(), tid) ==
        sync.participants.end()) {
      continue;
    }
    if (divergence_reported_.insert(key).second) {
      Diagnostic d;
      d.kind = DiagKind::kBarrierDivergence;
      d.blockId = block_id_;
      d.threadId = tid;
      d.otherThreadId = sync.arrived.empty() ? kNoThread : sync.arrived.front();
      d.detail = "thread returned from the kernel while " +
                 std::to_string(sync.arrived.size()) + " thread(s) wait at a " +
                 (sync.is_block ? "block" : "warp") + " barrier expecting it";
      report_.add(std::move(d));
    }
  }
}

void BlockChecker::onRunEnd(bool engine_ok) {
  if (!engine_ok) {
    for (const auto& [key, sync] : pending_) {
      if (!divergence_reported_.insert(key).second) continue;
      Diagnostic d;
      d.kind = DiagKind::kBarrierDivergence;
      d.blockId = block_id_;
      d.threadId = sync.arrived.empty() ? kNoThread : sync.arrived.front();
      d.detail = "deadlock: " + std::to_string(sync.arrived.size()) + " of " +
                 std::to_string(sync.participants.size()) +
                 " participants reached this " +
                 (sync.is_block ? "block" : "warp") + " barrier" +
                 (sync.is_block ? "" : " (mask " + hexMask(sync.mask) + ")");
      report_.add(std::move(d));
    }
  }
  for (const auto& [slot, state] : sharing_) {
    if (!state.active) continue;
    Diagnostic d;
    d.kind = DiagKind::kSharingOverflowLeak;
    d.blockId = block_id_;
    d.detail = std::string(slotName(slot)) + " sharing slot still active at " +
               "kernel end" +
               (state.overflowed ? "; its global overflow block leaked" : "");
    report_.add(std::move(d));
  }
}

const char* BlockChecker::slotName(uint32_t slot) const {
  return slot == kTeamSlot ? "team" : "group";
}

void BlockChecker::onSharingBegin(uint32_t tid, uint32_t slot,
                                  uint32_t capacity_slots, uint32_t num_args,
                                  bool overflowed) {
  (void)tid;
  SharingSlot& state = sharing_[slot];
  state.active = true;
  state.overflowed = overflowed;
  state.unpublished_reported = false;
  state.declared_args = num_args;
  state.capacity = capacity_slots;
  state.stored_bits = 0;
}

void BlockChecker::onSharingStore(uint32_t tid, uint32_t slot,
                                  uint32_t index) {
  auto it = sharing_.find(slot);
  if (it == sharing_.end() || !it->second.active) return;
  SharingSlot& state = it->second;
  if (index >= state.declared_args) {
    Diagnostic d;
    d.kind = DiagKind::kSharingOutOfSlice;
    d.blockId = block_id_;
    d.threadId = tid;
    d.address = index;
    d.detail = std::string(slotName(slot)) + " slot: storeArg index " +
               std::to_string(index) + " beyond the " +
               std::to_string(state.declared_args) +
               " declared args (slice capacity " +
               std::to_string(state.capacity) + " slots)";
    report_.add(std::move(d));
  }
  if (index < 64) state.stored_bits |= uint64_t{1} << index;
}

void BlockChecker::onSharingFetch(uint32_t tid, uint32_t slot) {
  auto it = sharing_.find(slot);
  if (it == sharing_.end() || !it->second.active) return;
  SharingSlot& state = it->second;
  if (state.unpublished_reported) return;
  const uint32_t checkable = std::min<uint32_t>(state.declared_args, 64);
  for (uint32_t i = 0; i < checkable; ++i) {
    if ((state.stored_bits >> i) & 1) continue;
    state.unpublished_reported = true;
    Diagnostic d;
    d.kind = DiagKind::kSharingUnpublishedRead;
    d.blockId = block_id_;
    d.threadId = tid;
    d.address = i;
    d.detail = std::string(slotName(slot)) + " slot: fetchArgs but arg " +
               std::to_string(i) + " of " +
               std::to_string(state.declared_args) + " was never stored";
    report_.add(std::move(d));
    break;
  }
}

void BlockChecker::onSharingEnd(uint32_t tid, uint32_t slot) {
  (void)tid;
  auto it = sharing_.find(slot);
  if (it != sharing_.end()) it->second.active = false;
}

void analyzeCrossBlockRaces(
    const std::vector<std::pair<uint32_t, const GlobalFootprint*>>& blocks,
    CheckReport& report) {
  struct Prior {
    uint8_t flags = 0;
    uint32_t first_block = 0;
    bool reported = false;
  };
  std::unordered_map<uint64_t, Prior> seen;
  std::vector<std::pair<uint64_t, uint8_t>> items;
  for (const auto& [block_id, fp] : blocks) {
    items.assign(fp->granules.begin(), fp->granules.end());
    std::sort(items.begin(), items.end());
    for (const auto& [granule, flags] : items) {
      auto [it, inserted] = seen.try_emplace(granule);
      Prior& prior = it->second;
      if (inserted) {
        prior.flags = flags;
        prior.first_block = block_id;
        continue;
      }
      // Blocks have no inter-block synchronization within a launch:
      // any combination other than read/read or atomic/atomic races.
      const uint8_t combined = prior.flags | flags;
      const bool benign = combined == GlobalFootprint::kRead ||
                          combined == GlobalFootprint::kAtomic;
      if (!benign && !prior.reported) {
        prior.reported = true;
        Diagnostic d;
        d.kind = DiagKind::kCrossBlockRace;
        d.blockId = block_id;
        d.space = MemSpace::kGlobal;
        d.address = granule * kGranuleBytes;
        d.detail = "block " + std::to_string(block_id) + " (" +
                   flagNames(flags) + ") conflicts with block " +
                   std::to_string(prior.first_block) + " (" +
                   flagNames(prior.flags) + ")";
        report.add(std::move(d));
      }
      prior.flags |= flags;
    }
  }
}

}  // namespace simtomp::simcheck
