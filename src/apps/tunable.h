// Tunable-app adapters: the bridge between the application kernels and
// the simtune autotuner.
//
// Each TunableApp packages what the tuner needs to search one app's
// launch space: a stable kernel key, a trip-count hint for the cache
// bucket, per-app axes (constrained to the modes the app actually
// implements), the app's stock hand-picked configuration (the paper's
// per-benchmark choices — the bar a tuned config must meet), and a
// TrialFn that maps a TuneCandidate onto the app's options and runs it
// in a scratch device. Trials verify results against the host
// reference, so a configuration that computes wrong answers can never
// win a search.
#pragma once

#include <string>
#include <vector>

#include "gpusim/arch.h"
#include "simtune/tuner.h"

namespace simtomp::apps {

struct TunableApp {
  std::string name;       ///< kernel key in the tuning cache
  uint64_t tripCount = 0; ///< outer (distribute) trip count
  simtune::TuneAxes axes;
  /// The app's stock configuration, expressed as a candidate. Always a
  /// member of `axes`, so an exhaustive search can only do better or
  /// equal (modeled cycles) than the hand-picked default.
  simtune::TuneCandidate handPicked;
  simtune::TrialFn trial;
};

/// `small` shrinks both the workload and the axes so a full exhaustive
/// sweep stays cheap (CI smoke, unit tests).
TunableApp tunableSpmv(const gpusim::ArchSpec& arch, bool small);
TunableApp tunableSu3(const gpusim::ArchSpec& arch, bool small);
TunableApp tunableIdeal(const gpusim::ArchSpec& arch, bool small);
TunableApp tunableLaplace3d(const gpusim::ArchSpec& arch, bool small);
TunableApp tunableMuramTranspose(const gpusim::ArchSpec& arch, bool small);
TunableApp tunableMuramInterpol(const gpusim::ArchSpec& arch, bool small);
TunableApp tunableBatchedGemm(const gpusim::ArchSpec& arch, bool small);

/// Every tunable app (the cg solver is excluded: its iteration count
/// makes trial sweeps impractical).
std::vector<TunableApp> tunableCorpus(const gpusim::ArchSpec& arch,
                                      bool small);

/// Corpus entry by name; throws via SIMTOMP_CHECK on unknown names —
/// use tunableCorpus() to enumerate valid ones.
TunableApp tunableByName(const std::string& name,
                         const gpusim::ArchSpec& arch, bool small);

}  // namespace simtomp::apps
