// Target-region launch: the host-facing entry of the device runtime.
//
// launchTarget configures a kernel the way LLVM's OpenMP offloading
// does: in generic teams mode the block gets one extra warp to host the
// team main thread (paper Fig. 2 / [17]); in SPMD mode every thread of
// the block is a worker. Every device thread starts in __target_init
// and the user's target-region code runs according to the execution
// contract of paper section 5.2.
#pragma once

#include <functional>

#include "gpusim/device.h"
#include "omprt/context.h"
#include "omprt/modes.h"
#include "support/status.h"

namespace simtomp::omprt {

/// Default size of the variable sharing space; the paper grew LLVM's
/// 1,024 bytes to 2,048 to accommodate SIMD groups (section 5.3.1).
inline constexpr uint32_t kDefaultSharingSpaceBytes = 2048;

struct TargetConfig {
  ExecMode teamsMode = ExecMode::kSPMD;
  uint32_t numTeams = 1;
  /// Worker threads per team; must be a positive multiple of warpSize.
  /// Generic teams mode adds one extra warp for the team main thread.
  uint32_t threadsPerTeam = 128;
  uint32_t sharingSpaceBytes = kDefaultSharingSpaceBytes;
  /// Host worker threads for independent teams (0 = auto: the
  /// SIMTOMP_HOST_WORKERS env var, else hardware_concurrency; 1 =
  /// serial). Affects simulation wall-clock only — modeled cycles and
  /// all counters are identical for any value.
  uint32_t hostWorkers = 0;
  /// Correctness checking (simcheck); see gpusim::LaunchConfig::check.
  simcheck::CheckConfig check{};

  [[nodiscard]] Status validate(const gpusim::ArchSpec& arch) const;
};

/// The target-region user code. Executed by the team main thread only
/// (generic teams mode) or by every thread (SPMD teams mode).
using TargetRegionFn = std::function<void(OmpContext&)>;

/// Launch a target region on the simulated device.
Result<gpusim::KernelStats> launchTarget(gpusim::Device& device,
                                         const TargetConfig& config,
                                         const TargetRegionFn& region);

}  // namespace simtomp::omprt
