#include "apps/ideal_kernel.h"

#include "dsl/dsl.h"
#include "support/rng.h"

namespace simtomp::apps {

namespace {

using gpusim::GlobalSpan;
using omprt::OmpContext;

inline double rowScalar(double first, uint64_t row) {
  return 0.5 * first + static_cast<double>(row % 17);
}

inline double elementValue(double s, double in, uint64_t k,
                           uint32_t flops) {
  double v = s * in + static_cast<double>(k);
  for (uint32_t f = 0; f < flops; ++f) v = v * 1.0000001 + 0.5;
  return v;
}

}  // namespace

IdealWorkload generateIdeal(uint32_t outerTrip, uint32_t innerTrip,
                            uint64_t seed) {
  Rng rng(seed);
  IdealWorkload w;
  w.outerTrip = outerTrip;
  w.innerTrip = innerTrip;
  w.input.resize(static_cast<size_t>(outerTrip) * innerTrip);
  for (double& v : w.input) v = rng.nextDouble(-1.0, 1.0);
  return w;
}

std::vector<double> idealReference(const IdealWorkload& w,
                                   uint32_t flopsPerElement) {
  std::vector<double> out(w.input.size(), 0.0);
  for (uint64_t i = 0; i < w.outerTrip; ++i) {
    const double s = rowScalar(w.input[i * w.innerTrip], i);
    for (uint64_t k = 0; k < w.innerTrip; ++k) {
      out[i * w.innerTrip + k] =
          elementValue(s, w.input[i * w.innerTrip + k], k, flopsPerElement);
    }
  }
  return out;
}

Result<AppRunResult> runIdeal(gpusim::Device& device, const IdealWorkload& w,
                              const IdealOptions& options) {
  auto dev_in = toDevice<double>(device, w.input);
  if (!dev_in.isOk()) return dev_in.status();
  auto dev_out = zeroDevice<double>(device, w.input.size());
  if (!dev_out.isOk()) return dev_out.status();
  const GlobalSpan<double> in = dev_in.value();
  const GlobalSpan<double> out = dev_out.value();
  const uint32_t inner = w.innerTrip;
  const uint32_t flops = options.flopsPerElement;

  dsl::LaunchSpec spec;
  spec.numTeams = options.numTeams;
  spec.threadsPerTeam = options.threadsPerTeam;
  spec.teamsMode = omprt::ExecMode::kSPMD;
  spec.parallelMode = options.simdlen > 1 ? omprt::ExecMode::kGeneric
                                          : omprt::ExecMode::kSPMD;
  spec.simdlen = options.simdlen;

  auto run = dsl::targetTeamsDistributeParallelFor(
      device, spec, w.outerTrip, [&](OmpContext& ctx, uint64_t row) {
        gpusim::ThreadCtx& t = ctx.gpu();
        // Sequential preamble: the row scalar must be computed before
        // the inner loop (this is what makes the nest non-collapsible).
        const double s = rowScalar(in.get(t, row * inner), row);
        t.fma(2);
        if (options.simdlen <= 1) {
          for (uint64_t k = 0; k < inner; ++k) {
            t.work(2);
            const double v = in.get(t, row * inner + k);
            t.fma(1 + flops);
            out.set(t, row * inner + k, elementValue(s, v, k, flops));
          }
        } else {
          dsl::simd(ctx, inner,
                    [&in, &out, s, row, inner, flops](OmpContext& c,
                                                      uint64_t k) {
                      gpusim::ThreadCtx& ct = c.gpu();
                      const double v = in.get(ct, row * inner + k);
                      ct.fma(1 + flops);
                      out.set(ct, row * inner + k,
                              elementValue(s, v, k, flops));
                    });
        }
      });

  AppRunResult result;
  if (run.isOk()) {
    result.stats = run.value();
    const std::vector<double> got = toHost(out);
    const std::vector<double> reference =
        idealReference(w, options.flopsPerElement);
    result.maxError = maxAbsDiff(got, reference);
    result.verified = result.maxError < 1e-12;
  }
  (void)device.freeArray(in.data());
  (void)device.freeArray(out.data());
  if (!run.isOk()) return run.status();
  return result;
}

}  // namespace simtomp::apps
