// directive_frontend: drive an offloaded kernel from directive text.
//
// The paper's lowering path is front-end independent (section 4.2);
// here the "front-end" is a string. The program parses an OpenMP-style
// directive, honours its map clauses against a name->array table,
// lowers the constructs to a launch spec (with the tightly-nested =>
// SPMD inference), and runs a SAXPY-with-inner-stencil kernel.
//
// Try editing the directive below: drop `simd` and the parallel region
// turns generic; add `parallel_mode(generic) simdlen(4)` and watch the
// cycle count move.
#include <cstdio>
#include <map>
#include <vector>

#include "front/directive.h"

using namespace simtomp;

int main() {
  const char* directive_text =
      "#pragma omp target teams distribute parallel for simd "
      "num_teams(32) thread_limit(128) simdlen(8) "
      "map(to: x) map(tofrom: y)";

  auto parsed = front::parseDirective(directive_text);
  if (!parsed.isOk()) {
    std::fprintf(stderr, "parse error: %s\n",
                 parsed.status().toString().c_str());
    return 1;
  }
  const front::DirectiveSpec& spec = parsed.value();
  std::printf("directive: %s\n", directive_text);
  std::printf("  constructs: %s%s%s%s%s%s\n", spec.hasTarget ? "target " : "",
              spec.hasTeams ? "teams " : "",
              spec.hasDistribute ? "distribute " : "",
              spec.hasParallel ? "parallel " : "", spec.hasFor ? "for " : "",
              spec.hasSimd ? "simd" : "");

  constexpr uint64_t kRows = 2048;
  constexpr uint64_t kInner = 16;
  std::vector<double> x(kRows * kInner);
  std::vector<double> y(kRows * kInner, 1.0);
  for (size_t i = 0; i < x.size(); ++i) x[i] = 0.001 * double(i % 1000);

  // Name -> host array table the map clauses resolve against.
  std::map<std::string, std::span<double>> symbols{
      {"x", std::span<double>(x)},
      {"y", std::span<double>(y)},
  };

  gpusim::Device device;
  hostrt::DataEnvironment env(device);
  for (const front::MapClause& map : spec.maps) {
    auto it = symbols.find(map.name);
    if (it == symbols.end()) {
      std::fprintf(stderr, "map names unknown symbol '%s'\n",
                   map.name.c_str());
      return 1;
    }
    const Status mapped = env.mapEnter(it->second, map.type);
    if (!mapped.isOk()) {
      std::fprintf(stderr, "map failed: %s\n", mapped.toString().c_str());
      return 1;
    }
    std::printf("  mapped %-2s (%zu bytes)\n", map.name.c_str(),
                it->second.size_bytes());
  }
  auto dev_x = env.deviceSpan(x.data()).value();
  auto dev_y = env.deviceSpan(y.data()).value();

  const dsl::LaunchSpec launch = spec.toLaunchSpec(device.arch());
  std::printf("  lowered: teams=%u x %u threads, teams %s, parallel %s, "
              "simdlen %u\n",
              launch.numTeams, launch.threadsPerTeam,
              omprt::execModeName(launch.teamsMode).data(),
              omprt::execModeName(launch.parallelMode).data(),
              launch.simdlen);

  auto stats = dsl::targetTeamsDistributeParallelFor(
      device, launch, kRows, [&](dsl::OmpContext& ctx, uint64_t row) {
        dsl::simd(ctx, kInner, [&, row](dsl::OmpContext& c, uint64_t k) {
          const uint64_t i = row * kInner + k;
          gpusim::ThreadCtx& t = c.gpu();
          const double v = 2.0 * dev_x.get(t, i) + dev_y.get(t, i);
          t.fma(1);
          dev_y.set(t, i, v);
        });
      });
  if (!stats.isOk()) {
    std::fprintf(stderr, "launch failed: %s\n",
                 stats.status().toString().c_str());
    return 1;
  }

  // Exit the data region per the map clauses (from/tofrom copy back).
  for (const front::MapClause& map : spec.maps) {
    (void)env.mapExit(symbols.at(map.name).data(), map.type);
  }

  // Verify.
  for (size_t i = 0; i < y.size(); ++i) {
    const double expect = 2.0 * (0.001 * double(i % 1000)) + 1.0;
    if (y[i] != expect) {
      std::fprintf(stderr, "mismatch at %zu\n", i);
      return 1;
    }
  }
  std::printf("directive_frontend OK: %llu elements verified, "
              "%llu simulated cycles\n",
              static_cast<unsigned long long>(y.size()),
              static_cast<unsigned long long>(stats.value().cycles));
  return 0;
}
