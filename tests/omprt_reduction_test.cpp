// Unit tests for the reduction extension (paper section 7 future work):
// warp-shuffle butterfly reductions and reducing simd loops.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <vector>

#include "omprt/runtime.h"
#include "omprt/target.h"

namespace simtomp::omprt {
namespace {

using gpusim::ArchSpec;
using gpusim::Counter;
using gpusim::Device;

TargetConfig spmdConfig(uint32_t threads) {
  TargetConfig config;
  config.teamsMode = ExecMode::kSPMD;
  config.numTeams = 1;
  config.threadsPerTeam = threads;
  return config;
}

// ---------------- simdReduceAdd (butterfly) ----------------

void butterflyMicrotask(OmpContext& ctx, void** args) {
  auto* results = static_cast<double*>(args[0]);
  const double mine = static_cast<double>(ctx.gpu().threadId());
  const double total = rt::simdReduceAdd(ctx, mine);
  results[ctx.gpu().threadId()] = total;
}

class ButterflyProperty : public ::testing::TestWithParam<uint32_t> {};

TEST_P(ButterflyProperty, EveryLaneGetsGroupTotal) {
  const uint32_t group = GetParam();
  Device dev(ArchSpec::testTiny());
  std::vector<double> results(64, -1.0);
  void* args[] = {results.data()};
  auto stats = launchTarget(
      dev, spmdConfig(64), [&](OmpContext& ctx) {
        rt::parallel(ctx, &butterflyMicrotask, args, 1,
                     {ExecMode::kSPMD, group});
      });
  ASSERT_TRUE(stats.isOk());
  for (uint32_t tid = 0; tid < 64; ++tid) {
    const uint32_t base = (tid / group) * group;
    double expected = 0.0;
    for (uint32_t lane = base; lane < base + group; ++lane) {
      expected += static_cast<double>(lane);
    }
    EXPECT_DOUBLE_EQ(results[tid], expected) << "thread " << tid;
  }
}

INSTANTIATE_TEST_SUITE_P(GroupSizes, ButterflyProperty,
                         ::testing::Values(1u, 2u, 4u, 8u, 16u, 32u));

TEST(ButterflyTest, ChargesShuffles) {
  Device dev(ArchSpec::testTiny());
  std::vector<double> results(32, 0.0);
  void* args[] = {results.data()};
  auto stats = launchTarget(
      dev, spmdConfig(32), [&](OmpContext& ctx) {
        rt::parallel(ctx, &butterflyMicrotask, args, 1, {ExecMode::kSPMD, 8});
      });
  ASSERT_TRUE(stats.isOk());
  // log2(8) = 3 butterfly steps per lane.
  EXPECT_EQ(stats.value().counters.get(Counter::kShuffle), 32u * 3u);
}

TEST(ButterflyTest, IntegersReduceExactly) {
  Device dev(ArchSpec::testTiny());
  std::vector<int64_t> results(32, 0);
  auto microtask = +[](OmpContext& ctx, void** args) {
    auto* out = static_cast<int64_t*>(args[0]);
    const int64_t total =
        rt::simdReduceAdd(ctx, static_cast<int64_t>(1));
    out[ctx.gpu().threadId()] = total;
  };
  void* args[] = {results.data()};
  auto stats = launchTarget(
      dev, spmdConfig(32), [&](OmpContext& ctx) {
        rt::parallel(ctx, microtask, args, 1, {ExecMode::kSPMD, 16});
      });
  ASSERT_TRUE(stats.isOk());
  for (int64_t r : results) EXPECT_EQ(r, 16);
}

// ---------------- simdLoopReduceAdd ----------------

double reduceBody(OmpContext& ctx, uint64_t iv, void** args) {
  const auto* scale = static_cast<const double*>(args[0]);
  ctx.gpu().fma();
  return *scale * static_cast<double>(iv);
}

struct ReduceRegionArgs {
  double scale = 1.0;
  uint64_t trip = 0;
  std::atomic<int> leaders{0};
  double results[64] = {};
};

void reduceRegion(OmpContext& ctx, void** args) {
  auto* ra = static_cast<ReduceRegionArgs*>(args[0]);
  void* body_args[] = {&ra->scale};
  const double total =
      rt::simdLoopReduceAdd(ctx, &reduceBody, ra->trip, body_args, 1);
  if (ctx.isSimdGroupLeader()) {
    ra->results[ctx.simdGroup()] = total;
    ra->leaders++;
  }
}

class ReduceLoopMatrix
    : public ::testing::TestWithParam<std::tuple<ExecMode, uint32_t>> {};

TEST_P(ReduceLoopMatrix, SumMatchesClosedForm) {
  const auto [mode, group] = GetParam();
  Device dev(ArchSpec::testTiny());
  ReduceRegionArgs ra;
  ra.scale = 2.0;
  ra.trip = 25;
  void* args[] = {&ra};
  auto stats = launchTarget(
      dev, spmdConfig(64), [&](OmpContext& ctx) {
        rt::parallel(ctx, &reduceRegion, args, 1, {mode, group});
      });
  ASSERT_TRUE(stats.isOk());
  const double expected = 2.0 * (25.0 * 24.0 / 2.0);
  const int groups = static_cast<int>(64 / group);
  EXPECT_EQ(ra.leaders.load(), groups);
  for (int g = 0; g < groups; ++g) {
    EXPECT_DOUBLE_EQ(ra.results[g], expected) << "group " << g;
  }
}

INSTANTIATE_TEST_SUITE_P(
    ModesAndGroups, ReduceLoopMatrix,
    ::testing::Combine(::testing::Values(ExecMode::kSPMD, ExecMode::kGeneric),
                       ::testing::Values(1u, 4u, 8u, 32u)));

TEST(ReduceLoopTest, EmptyLoopYieldsZero) {
  Device dev(ArchSpec::testTiny());
  ReduceRegionArgs ra;
  ra.trip = 0;
  void* args[] = {&ra};
  auto stats = launchTarget(
      dev, spmdConfig(32), [&](OmpContext& ctx) {
        rt::parallel(ctx, &reduceRegion, args, 1, {ExecMode::kGeneric, 8});
      });
  ASSERT_TRUE(stats.isOk());
  for (int g = 0; g < 4; ++g) EXPECT_EQ(ra.results[g], 0.0);
}

TEST(ReduceLoopTest, GenericModeUsesStateMachine) {
  Device dev(ArchSpec::testTiny());
  ReduceRegionArgs ra;
  ra.trip = 64;
  void* args[] = {&ra};
  auto stats = launchTarget(
      dev, spmdConfig(32), [&](OmpContext& ctx) {
        rt::parallel(ctx, &reduceRegion, args, 1, {ExecMode::kGeneric, 8});
      });
  ASSERT_TRUE(stats.isOk());
  EXPECT_GT(stats.value().counters.get(Counter::kStatePoll), 0u);
  EXPECT_DOUBLE_EQ(ra.results[0], 64.0 * 63.0 / 2.0);
}

TEST(ReduceLoopTest, ReductionAvoidsAtomics) {
  Device dev(ArchSpec::testTiny());
  ReduceRegionArgs ra;
  ra.trip = 32;
  void* args[] = {&ra};
  auto stats = launchTarget(
      dev, spmdConfig(32), [&](OmpContext& ctx) {
        rt::parallel(ctx, &reduceRegion, args, 1, {ExecMode::kSPMD, 8});
      });
  ASSERT_TRUE(stats.isOk());
  EXPECT_EQ(stats.value().counters.get(Counter::kAtomicRmw), 0u);
}

}  // namespace
}  // namespace simtomp::omprt
