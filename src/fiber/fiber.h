// Cooperative fibers over POSIX ucontext.
//
// Every simulated GPU thread owns a fiber, so the runtime's state
// machines (paper Figs. 5-7) execute literally: a worker thread parks
// inside simdStateMachine() on its own stack while the SIMD main thread
// keeps running, exactly as on the device. A FiberScheduler drives all
// fibers of one thread block on a single OS thread in deterministic
// (lane-ordered) round-robin, which is also how we approximate warp
// scheduling order.
//
// Blocking primitive: a fiber blocks on an opaque tag pointer (e.g. the
// address of a barrier object); whoever completes the barrier calls
// unblockAll(tag). If the scheduler ever finds no runnable fiber while
// unfinished fibers remain, that is a deadlock in the simulated program
// (e.g. a barrier not reached by all participants) and run() reports it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "support/status.h"

// ucontext.h is POSIX; the simulator is Linux-only by design.
#include <ucontext.h>

namespace simtomp::fiber {

enum class FiberState : uint8_t { kReady, kRunning, kBlocked, kFinished };

class FiberScheduler;

/// One cooperative fiber. Created and owned by a FiberScheduler.
class Fiber {
 public:
  using Entry = std::function<void()>;

  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;
  ~Fiber();

  [[nodiscard]] FiberState state() const { return state_; }
  [[nodiscard]] size_t index() const { return index_; }
  /// Tag this fiber is blocked on (nullptr unless kBlocked).
  [[nodiscard]] const void* waitTag() const { return wait_tag_; }

 private:
  friend class FiberScheduler;
  /// `external_stack` non-null: use that storage (size `stack_size`,
  /// owned by the caller, e.g. an arena) instead of heap-allocating.
  Fiber(size_t index, Entry entry, size_t stack_size, char* external_stack);

  static void trampoline();

  size_t index_;
  Entry entry_;
  std::vector<char> owned_stack_;  ///< empty when the stack is external
  char* stack_data_ = nullptr;
  size_t stack_bytes_ = 0;
  ucontext_t context_{};
  FiberState state_ = FiberState::kReady;
  const void* wait_tag_ = nullptr;
  bool started_ = false;
  void* tsan_fiber_ = nullptr;  ///< ThreadSanitizer fiber handle (tsan builds)
};

/// Drives a set of fibers to completion on the calling OS thread.
///
/// Thread confinement: a scheduler and its fibers belong to the OS
/// thread that constructed the scheduler (under host-parallel block
/// execution, the worker that runs the block). spawn/run/yield/block/
/// unblockAll assert they are called on that thread — ucontext stacks
/// must never migrate between host threads.
class FiberScheduler {
 public:
  /// Optional external stack storage: called once per spawn with the
  /// stack size; must return `stack_size` writable bytes that outlive
  /// the scheduler (e.g. arena memory). nullptr = heap-allocate per
  /// fiber (the pre-arena behaviour; stacks are then zero-initialized,
  /// external stacks are handed out as-is).
  using StackAllocator = std::function<char*(size_t stack_size)>;

  explicit FiberScheduler(size_t stack_size = kDefaultStackSize,
                          StackAllocator stack_allocator = nullptr);
  ~FiberScheduler();

  FiberScheduler(const FiberScheduler&) = delete;
  FiberScheduler& operator=(const FiberScheduler&) = delete;

  static constexpr size_t kDefaultStackSize = 128 * 1024;

  /// Register a fiber; all spawns must happen before run(). Returns its
  /// index (dense, starting at 0).
  size_t spawn(Fiber::Entry entry);

  /// Run every fiber to completion in round-robin order.
  /// Returns a FAILED_PRECONDITION status on deadlock (with a dump of
  /// which fibers are blocked on what), DEADLINE_EXCEEDED when a step
  /// budget is set and exhausted, or INTERNAL at an injected trap step.
  /// Rethrows the first exception a fiber escaped with.
  Status run();

  /// Watchdog: bound run() to `budget` scheduler steps (fiber
  /// switches); 0 = unlimited. Exceeding the budget stops the run with
  /// DEADLINE_EXCEEDED and a fiber-state dump — the only way out of a
  /// livelock, where every fiber stays runnable and the deadlock
  /// detector never fires.
  void setStepBudget(uint64_t budget) { step_budget_ = budget; }

  /// Fault injection: make run() fail with INTERNAL ("kernel trap")
  /// once the step counter reaches `step` (1-based; 0 disarms).
  void setTrapStep(uint64_t step) { trap_step_ = step; }

  /// Scheduler steps taken so far (deterministic for a given program).
  [[nodiscard]] uint64_t stepCount() const { return step_count_; }

  // ---- Calls below are only legal from inside a running fiber. ----

  /// Yield the processor but stay runnable.
  void yield();

  /// Block the current fiber on `tag` until some fiber calls
  /// unblockAll(tag). `tag` must be non-null.
  void block(const void* tag);

  /// Make every fiber blocked on `tag` runnable again. Callable from
  /// inside a fiber (typical) or from the scheduler thread between runs.
  void unblockAll(const void* tag);

  /// The currently executing fiber (nullptr if called off-fiber).
  [[nodiscard]] Fiber* current() const { return current_; }

  [[nodiscard]] size_t fiberCount() const { return fibers_.size(); }
  [[nodiscard]] size_t finishedCount() const { return finished_count_; }

 private:
  friend class Fiber;

  void switchToFiber(Fiber& f);
  void switchToScheduler();
  [[nodiscard]] std::string describeBlockedFibers() const;
  [[nodiscard]] std::string describeFiberStates() const;

  size_t stack_size_;
  StackAllocator stack_allocator_;
  std::thread::id owner_thread_ = std::this_thread::get_id();
  std::vector<std::unique_ptr<Fiber>> fibers_;
  ucontext_t scheduler_context_{};
  void* tsan_scheduler_fiber_ = nullptr;
  Fiber* current_ = nullptr;
  size_t finished_count_ = 0;
  bool running_ = false;
  std::exception_ptr pending_exception_;
  uint64_t step_budget_ = 0;  ///< 0 = no watchdog
  uint64_t trap_step_ = 0;    ///< 0 = no injected trap
  uint64_t step_count_ = 0;
};

}  // namespace simtomp::fiber
