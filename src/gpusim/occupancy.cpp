#include "gpusim/occupancy.h"

namespace simtomp::gpusim {

OccupancyInfo computeOccupancy(const ArchSpec& arch, uint32_t threadsPerBlock,
                               uint32_t sharedBytesPerBlock) {
  OccupancyInfo info;
  info.threadsPerBlock = threadsPerBlock;
  if (threadsPerBlock == 0 || threadsPerBlock > arch.maxThreadsPerBlock) {
    return info;  // unlaunchable shape: everything stays zero
  }
  info.warpsPerBlock = (threadsPerBlock + arch.warpSize - 1) / arch.warpSize;
  info.blocksPerSmByThreads = arch.maxThreadsPerSM / threadsPerBlock;
  info.blocksPerSmByShared =
      sharedBytesPerBlock == 0
          ? info.blocksPerSmByThreads  // not shared-memory limited
          : arch.sharedMemPerSM / sharedBytesPerBlock;
  info.residentBlocksPerSm =
      info.blocksPerSmByThreads < info.blocksPerSmByShared
          ? info.blocksPerSmByThreads
          : info.blocksPerSmByShared;
  const uint32_t max_warps = arch.maxThreadsPerSM / arch.warpSize;
  const uint32_t resident_warps = info.residentBlocksPerSm * info.warpsPerBlock;
  info.warpOccupancy =
      max_warps == 0 ? 0.0
                     : static_cast<double>(
                           resident_warps > max_warps ? max_warps
                                                      : resident_warps) /
                           static_cast<double>(max_warps);
  return info;
}

}  // namespace simtomp::gpusim
