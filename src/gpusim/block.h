// BlockEngine: executes one thread block of a simulated kernel.
//
// Every device thread of the block is a fiber; the engine drives them in
// lane order on one OS thread. Barriers are implemented as sync points:
// arriving threads record their timeline, the last arrival computes the
// release time (the max) and wakes everyone, so lockstep cost semantics
// fall out naturally — a warp region costs what its slowest lane costs.
//
// The resulting block time is
//     max( slowest thread timeline,
//          sum of per-warp busy cycles / warp schedulers per SM )
// i.e. latency- and issue-throughput-bound, which is what makes the
// paper's "extra main warp" and idle-lane effects visible.
#pragma once

#include <array>
#include <cstring>
#include <memory>
#include <vector>

#include "fiber/fiber.h"
#include "gpusim/arch.h"
#include "gpusim/cost_model.h"
#include "gpusim/memory.h"
#include "gpusim/thread.h"
#include "simfault/fault.h"
#include "support/arena.h"
#include "support/lane_mask.h"
#include "support/status.h"

namespace simtomp::gpusim {

/// Barrier bookkeeping for one (warp, mask) or block-wide sync point.
struct SyncPoint {
  LaneMask mask = 0;
  uint32_t target = 0;
  uint32_t arrived = 0;
  uint64_t pendingMax = 0;
  uint64_t generation = 0;
  // Release times double-buffered by generation parity: waiters of
  // generation g read slot g&1, which the *next* generation (g+1) cannot
  // clobber before all g-waiters re-arrive (they are part of the mask).
  std::array<uint64_t, 2> releaseTime{};
};

/// Rendezvous + result slot for one convergence fast-path batch (one
/// (warp, mask) pair). The last lane to arrive becomes the *runner*: it
/// executes the batched loop bodies for every lane, deposits per-lane
/// results, and releases the others. Arena-allocated (stable address =
/// fiber block tag); trivially destructible by construction.
struct BatchPoint {
  LaneMask mask = 0;
  uint32_t target = 0;
  uint32_t arrived = 0;
  std::array<double, 64> result{};  ///< per-lane reduce results (by lane id)
};

struct WarpState {
  LaneMask memberMask = 0;                 ///< lanes that exist in the block
  std::vector<std::unique_ptr<SyncPoint>> syncs;  ///< stable addresses (block tags)
  std::vector<BatchPoint*> batches;        ///< arena-owned, keyed by mask
  std::array<uint64_t, 64> exchange{};     ///< shuffle/ballot staging
};

class BlockEngine {
 public:
  BlockEngine(const ArchSpec& arch, const CostModel& cost,
              DeviceMemory& global_memory, uint32_t block_id,
              uint32_t num_blocks, uint32_t num_threads);

  BlockEngine(const BlockEngine&) = delete;
  BlockEngine& operator=(const BlockEngine&) = delete;

  /// Execute the kernel for every thread of this block.
  Status run(const Kernel& kernel);

  // ---- Device-side services (called from fiber context) ----
  /// Warp-level barrier. `charged=false` performs the rendezvous and
  /// timeline alignment but charges no cycles — used to model AMD-style
  /// implicit wavefront lockstep, where no barrier instruction exists
  /// (paper section 5.4.1).
  void warpBarrier(ThreadCtx& t, LaneMask mask, bool charged = true);
  void blockBarrier(ThreadCtx& t);

  template <typename T>
  T shuffle(ThreadCtx& t, T value, unsigned src_lane, LaneMask mask) {
    static_assert(sizeof(T) <= sizeof(uint64_t) &&
                      std::is_trivially_copyable_v<T>,
                  "shuffle values must fit a 64-bit exchange slot");
    WarpState& warp = warps_[t.warpId()];
    uint64_t raw = 0;
    std::memcpy(&raw, &value, sizeof(T));
    warp.exchange[t.laneId()] = raw;
    t.charge(Counter::kShuffle, t.cost().aluOp);
    warpBarrier(t, mask);
    const uint64_t fetched = warp.exchange[src_lane];
    warpBarrier(t, mask);  // keep slots stable until every lane has read
    T out;
    std::memcpy(&out, &fetched, sizeof(T));
    return out;
  }

  LaneMask ballot(ThreadCtx& t, bool predicate, LaneMask mask);

  [[nodiscard]] SharedMemory& sharedMemory() { return shared_; }
  [[nodiscard]] DeviceMemory& globalMemory() { return *global_; }
  [[nodiscard]] const ArchSpec& arch() const { return *arch_; }
  [[nodiscard]] fiber::FiberScheduler& scheduler() { return scheduler_; }
  /// Per-block bump arena; everything created here dies with the block.
  /// The engine's own state (fiber stacks, thread contexts, batch
  /// points) already lives here; the OpenMP runtime parks its TeamState
  /// in it too.
  [[nodiscard]] support::Arena& arena() { return arena_.arena(); }
  /// Grid position of this block; under host-parallel execution the
  /// setup hook keys per-block state slots off this.
  [[nodiscard]] uint32_t blockId() const { return block_id_; }
  [[nodiscard]] ThreadCtx& thread(uint32_t tid) { return threads_[tid]; }
  [[nodiscard]] uint32_t numThreads() const { return num_threads_; }
  /// Lanes of warp `w` that exist in the block.
  [[nodiscard]] LaneMask warpMemberMask(uint32_t w) const {
    return warps_[w].memberMask;
  }
  /// True when simfault armed anything for this block — the convergence
  /// fast path is disabled then, so injected sync faults keep observing
  /// the exact lane-per-fiber arrival sequence they were tuned against.
  [[nodiscard]] bool hasArmedFault() const { return fault_ != nullptr; }

  // ---- Convergence fast path rendezvous ----
  /// The batch point for (this warp, mask); created in the arena on
  /// first use.
  BatchPoint& convergentBatchPoint(ThreadCtx& t, LaneMask mask);
  /// Arrive at a batch point. Returns true for the runner (the last
  /// arrival, mirroring arriveAtSync's release rule); everyone else
  /// blocks until convergentBatchRelease and returns false.
  bool convergentBatchArrive(BatchPoint& bp);
  /// Wake every lane parked at `bp` (runner only, after the batch).
  void convergentBatchRelease(BatchPoint& bp);

  /// Arbitrary per-block runtime state slot (the OpenMP runtime parks its
  /// TeamState here so device code can reach it from any thread).
  void setUserState(void* state) { user_state_ = state; }
  [[nodiscard]] void* userState() const { return user_state_; }

  /// Attach a simcheck observer for this block's execution. Wires the
  /// arena ranges and every thread context; call before run().
  void setChecker(simcheck::BlockChecker* checker);
  [[nodiscard]] simcheck::BlockChecker* checker() const { return checker_; }

  /// Attach a simprof observer for this block's execution. Wires every
  /// thread context to its ThreadProfile; call before run(). Like the
  /// checker, the profiler charges no modeled cycles.
  void setProfiler(simprof::BlockProfiler* profiler);
  [[nodiscard]] simprof::BlockProfiler* profiler() const { return profiler_; }

  /// Watchdog: bound this block's fiber-scheduler steps (0 = off).
  /// Off the hot path — the budget check lives in the scheduler loop,
  /// not in any device-side primitive.
  void setWatchdog(uint64_t step_budget) {
    scheduler_.setStepBudget(step_budget);
  }

  /// Arm injected faults for this block (nullptr = none; call before
  /// run()). kTrap arms the fiber scheduler directly; the sync and
  /// sharing kinds fire from faultFires() at the Nth site event.
  void setFault(const simfault::BlockFaultArm* arm);

  /// Site-event hook: returns true when the armed fault of `kind`
  /// fires at this occurrence. Each kind counts its own occurrences,
  /// in the block's deterministic fiber order.
  [[nodiscard]] bool faultFires(simfault::FaultKind kind);

  // ---- Results (valid after run()) ----
  [[nodiscard]] uint64_t blockTime() const { return block_time_; }
  [[nodiscard]] uint64_t busySum() const { return busy_sum_; }
  [[nodiscard]] uint64_t maxThreadTime() const { return max_thread_time_; }
  [[nodiscard]] const CounterSet& counters() const { return counters_; }

 private:
  SyncPoint& findOrCreateSync(WarpState& warp, LaneMask mask);
  void arriveAtSync(ThreadCtx& t, SyncPoint& sp);

  const ArchSpec* arch_;
  const CostModel* cost_;
  DeviceMemory* global_;
  uint32_t block_id_;
  SharedMemory shared_;
  // Declared before the scheduler and thread contexts: both allocate
  // from it (fiber stacks / ThreadCtx array), so it must outlive them.
  support::ArenaLease arena_;
  fiber::FiberScheduler scheduler_;
  ThreadCtx* threads_ = nullptr;  ///< arena array, length num_threads_
  uint32_t num_threads_ = 0;
  std::vector<WarpState> warps_;
  SyncPoint block_sync_;
  void* user_state_ = nullptr;
  simcheck::BlockChecker* checker_ = nullptr;
  simprof::BlockProfiler* profiler_ = nullptr;
  const simfault::BlockFaultArm* fault_ = nullptr;
  uint64_t fault_livelock_seen_ = 0;
  uint64_t fault_corrupt_seen_ = 0;
  uint64_t fault_sharing_seen_ = 0;

  uint64_t block_time_ = 0;
  uint64_t busy_sum_ = 0;
  uint64_t max_thread_time_ = 0;
  CounterSet counters_;
};

// ---- ThreadCtx methods that need BlockEngine ----

inline void ThreadCtx::syncWarp(LaneMask mask) { block_->warpBarrier(*this, mask); }
inline void ThreadCtx::syncBlock() { block_->blockBarrier(*this); }

template <typename T>
T ThreadCtx::shfl(T value, unsigned src_lane, LaneMask mask) {
  return block_->shuffle(*this, value, src_lane, mask);
}

template <typename T>
T ThreadCtx::shflDown(T value, unsigned delta, LaneMask mask) {
  const unsigned src = laneId() + delta;
  // Lanes whose source falls outside the mask keep their own value; the
  // shuffle still participates in both barriers.
  const unsigned effective_src = (src < 64 && laneIn(mask, src)) ? src : laneId();
  return block_->shuffle(*this, value, effective_src, mask);
}

template <typename T>
T ThreadCtx::shflXor(T value, unsigned lane_xor, LaneMask mask) {
  const unsigned src = laneId() ^ lane_xor;
  const unsigned effective_src = (src < 64 && laneIn(mask, src)) ? src : laneId();
  return block_->shuffle(*this, value, effective_src, mask);
}

inline LaneMask ThreadCtx::ballot(bool predicate, LaneMask mask) {
  return block_->ballot(*this, predicate, mask);
}

}  // namespace simtomp::gpusim
