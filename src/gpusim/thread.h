// Per-thread execution context for simulated device code.
//
// A ThreadCtx is handed to the kernel entry of every simulated GPU
// thread. It carries the thread's identity (block, thread, warp, lane),
// its two clocks, and the charging interface the typed memory views and
// the OpenMP runtime use:
//
//   time  — the thread's position on the simulated timeline. Advanced by
//           every charge and snapped forward to the barrier release time
//           at synchronization points (waiting is "free" but moves time).
//   busy  — only the charged cycles; used for the SM issue-throughput
//           bound (a thread parked at a barrier consumes no issue slots).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <type_traits>

#include "gpusim/cost_model.h"
#include "gpusim/memory.h"
#include "gpusim/stats.h"
#include "simcheck/checker.h"
#include "simprof/profile.h"
#include "support/lane_mask.h"

namespace simtomp::gpusim {

class BlockEngine;

/// How a thread reacts to "convergence hazards" — operations (barriers,
/// cross-lane ops, atomics, divergent branches) whose timing or result
/// can depend on lane interleaving, making a loop body ineligible for
/// the batched convergence fast path.
///   kNone   — normal execution, hazards are not tracked (zero cost).
///   kProbe  — count hazards (slow-path probe run of a candidate body).
///   kForbid — a hazard is a charging bug: the fast path promised the
///             body was convergent; abort the block with a diagnostic.
enum class HazardMode : uint8_t { kNone, kProbe, kForbid };

class ThreadCtx {
 public:
  ThreadCtx(BlockEngine& block, const CostModel& cost, uint32_t block_id,
            uint32_t num_blocks, uint32_t thread_id, uint32_t num_threads,
            uint32_t warp_size)
      : block_(&block),
        cost_(&cost),
        block_id_(block_id),
        num_blocks_(num_blocks),
        thread_id_(thread_id),
        num_threads_(num_threads),
        warp_size_(warp_size) {}

  // ---- Identity ----
  [[nodiscard]] uint32_t blockId() const { return block_id_; }
  [[nodiscard]] uint32_t numBlocks() const { return num_blocks_; }
  [[nodiscard]] uint32_t threadId() const { return thread_id_; }
  [[nodiscard]] uint32_t numThreads() const { return num_threads_; }
  [[nodiscard]] uint32_t warpSize() const { return warp_size_; }
  [[nodiscard]] uint32_t warpId() const { return thread_id_ / warp_size_; }
  [[nodiscard]] uint32_t laneId() const { return thread_id_ % warp_size_; }
  /// Global thread index across the whole grid.
  [[nodiscard]] uint64_t globalThreadId() const {
    return static_cast<uint64_t>(block_id_) * num_threads_ + thread_id_;
  }

  // ---- Clocks & accounting ----
  [[nodiscard]] uint64_t time() const { return time_; }
  [[nodiscard]] uint64_t busy() const { return busy_; }
  [[nodiscard]] const CostModel& cost() const { return *cost_; }
  [[nodiscard]] const CounterSet& counters() const { return counters_; }

  void charge(Counter counter, uint64_t cycles, uint64_t count = 1) {
    counters_.add(counter, count);
    busy_ += cycles;
    time_ += cycles;
    if (profile_ != nullptr) {
      profile_->onCharge(static_cast<uint32_t>(counter), cycles, count);
    }
  }
  /// Snap the timeline forward (barrier release); never moves backwards.
  void alignTimeTo(uint64_t t) {
    if (t > time_) time_ = t;
  }

  // ---- Compute charging ----
  void work(uint64_t alu_ops) { charge(Counter::kAluWork, alu_ops * cost_->aluOp, alu_ops); }
  void fma(uint64_t n = 1) { charge(Counter::kAluWork, n * cost_->fmaOp, n); }
  void branch() {
    noteHazard("divergent branch");
    charge(Counter::kAluWork, cost_->divergeBranch);
  }

  // ---- Convergence-hazard tracking (fast-path classification) ----
  void beginHazardProbe() {
    hazard_mode_ = HazardMode::kProbe;
    hazard_count_ = 0;
  }
  /// Ends a probe; returns true iff the probed code was hazard-free.
  bool endHazardProbe() {
    hazard_mode_ = HazardMode::kNone;
    return hazard_count_ == 0;
  }
  /// Arm/disarm the kForbid guard around a batched fast-path body.
  void setHazardGuard(bool forbid) {
    hazard_mode_ = forbid ? HazardMode::kForbid : HazardMode::kNone;
  }
  /// Called at every hazard site; free when tracking is off.
  void noteHazard(const char* what) {
    if (hazard_mode_ == HazardMode::kNone) return;
    if (hazard_mode_ == HazardMode::kProbe) {
      ++hazard_count_;
      return;
    }
    hazardForbidden(what);  // kForbid: [[noreturn]] via StatusException
  }

  // ---- Memory charging (used by the typed spans) ----
  void chargeGlobalLoad(uint64_t n = 1) {
    charge(Counter::kGlobalLoad, n * cost_->globalAccess, n);
  }
  void chargeGlobalStore(uint64_t n = 1) {
    charge(Counter::kGlobalStore, n * cost_->globalAccess, n);
  }
  void chargeSharedLoad(uint64_t n = 1) {
    charge(Counter::kSharedLoad, n * cost_->sharedAccess, n);
  }
  void chargeSharedStore(uint64_t n = 1) {
    charge(Counter::kSharedStore, n * cost_->sharedAccess, n);
  }
  void chargeLocal(uint64_t n = 1) {
    charge(Counter::kLocalAccess, n * cost_->localAccess, n);
  }
  void chargeAtomic(uint64_t n = 1) {
    // Atomics are hazards: their result (and for FP, the final value)
    // depends on inter-lane ordering, which the batched path reorders.
    noteHazard("atomic RMW");
    charge(Counter::kAtomicRmw, n * cost_->atomicRmw, n);
  }

  // ---- Synchronization / warp intrinsics (defined via BlockEngine) ----
  /// Warp-level barrier over `mask` lanes of this thread's warp.
  void syncWarp(LaneMask mask);
  /// Block-wide barrier (__syncthreads).
  void syncBlock();
  /// Read `value` from `src_lane` of this warp; all `mask` lanes must call.
  template <typename T>
  T shfl(T value, unsigned src_lane, LaneMask mask);
  /// Read the value held by the lane `delta` above this one (within mask
  /// width); lanes whose source is outside the mask get their own value.
  template <typename T>
  T shflDown(T value, unsigned delta, LaneMask mask);
  /// Butterfly shuffle: read from lane (laneId ^ lane_xor). The mask must
  /// be closed under the xor (true for power-of-two aligned groups).
  template <typename T>
  T shflXor(T value, unsigned lane_xor, LaneMask mask);
  /// Warp vote: mask of lanes (within `mask`) whose predicate is true.
  LaneMask ballot(bool predicate, LaneMask mask);

  [[nodiscard]] BlockEngine& block() { return *block_; }

  // ---- Correctness checking (no-ops when checking is off) ----
  /// Installed by the BlockEngine when the launch enables simcheck.
  void setChecker(simcheck::BlockChecker* checker) { checker_ = checker; }
  [[nodiscard]] simcheck::BlockChecker* checker() const { return checker_; }
  /// Report a span access to the checker. Charges nothing: modeled
  /// cycles are bit-identical with checking on or off.
  void noteAccess(const void* ptr, size_t bytes, simcheck::AccessKind kind) {
    if (checker_ != nullptr) checker_->onAccess(thread_id_, ptr, bytes, kind);
  }
  /// Like noteAccess, for runtime-owned transient allocations whose
  /// granules the allocator may hand to other blocks after release
  /// (sharing-space overflow staging): race-checked within the block,
  /// excluded from the cross-block footprint.
  void noteBlockPrivateAccess(const void* ptr, size_t bytes,
                              simcheck::AccessKind kind) {
    if (checker_ != nullptr) {
      checker_->onAccess(thread_id_, ptr, bytes, kind,
                         /*block_private=*/true);
    }
  }
  /// Annotate an access to a runtime protocol slot (published function
  /// pointers / termination flags that live outside the arenas).
  void noteSyntheticAccess(uint64_t key, bool is_write) {
    if (checker_ != nullptr) {
      checker_->onSyntheticAccess(thread_id_, key, is_write);
    }
  }
  /// Annotate lock-style synchronization (rt::critical).
  void noteLockAcquire(uint64_t key) {
    if (checker_ != nullptr) checker_->onLockAcquire(thread_id_, key);
  }
  void noteLockRelease(uint64_t key) {
    if (checker_ != nullptr) checker_->onLockRelease(thread_id_, key);
  }

  // ---- Profiling (no-ops when profiling is off) ----
  /// Installed by the BlockEngine when the launch enables simprof.
  void setProfile(simprof::ThreadProfile* profile) { profile_ = profile; }
  [[nodiscard]] simprof::ThreadProfile* profile() const { return profile_; }
  /// Open/close a construct span on this thread's modeled timeline.
  /// Charges nothing: modeled cycles are bit-identical with profiling
  /// on or off (the profiler only reads the clocks).
  void noteEnter(simprof::Construct construct, uint64_t detail = 0) {
    if (profile_ != nullptr) profile_->enter(construct, detail, time_);
  }
  void noteExit() {
    if (profile_ != nullptr) profile_->exit(time_);
  }

 private:
  /// Out-of-line (block.cpp): throws a FAILED_PRECONDITION
  /// StatusException naming the hazard — a fast-path classification bug.
  [[noreturn]] void hazardForbidden(const char* what);

  BlockEngine* block_;
  const CostModel* cost_;
  uint32_t block_id_;
  uint32_t num_blocks_;
  uint32_t thread_id_;
  uint32_t num_threads_;
  uint32_t warp_size_;
  uint64_t time_ = 0;
  uint64_t busy_ = 0;
  HazardMode hazard_mode_ = HazardMode::kNone;
  uint64_t hazard_count_ = 0;
  CounterSet counters_;
  simcheck::BlockChecker* checker_ = nullptr;
  simprof::ThreadProfile* profile_ = nullptr;
};

/// Kernel entry: runs once per simulated device thread.
using Kernel = std::function<void(ThreadCtx&)>;

// ---- Typed span accessors (need ThreadCtx to charge) ----

template <typename T>
T GlobalSpan<T>::get(ThreadCtx& t, size_t i) const {
  t.chargeGlobalLoad();
  t.noteAccess(&data_[i], sizeof(T), simcheck::AccessKind::kRead);
  return data_[i];
}

template <typename T>
void GlobalSpan<T>::set(ThreadCtx& t, size_t i, T value) const {
  t.chargeGlobalStore();
  t.noteAccess(&data_[i], sizeof(T), simcheck::AccessKind::kWrite);
  data_[i] = value;
}

template <typename T>
T GlobalSpan<T>::atomicAdd(ThreadCtx& t, size_t i, T value) const {
  t.chargeAtomic();
  t.noteAccess(&data_[i], sizeof(T), simcheck::AccessKind::kAtomic);
  // CAS loop so the same code works for floating point and integers and
  // stays correct if blocks ever execute on concurrent host threads.
  static_assert(std::is_arithmetic_v<T>);
  std::atomic_ref<T> ref(data_[i]);
  T expected = ref.load(std::memory_order_relaxed);
  while (!ref.compare_exchange_weak(expected, expected + value,
                                    std::memory_order_relaxed)) {
  }
  return expected;
}

template <typename T>
T SharedSpan<T>::get(ThreadCtx& t, size_t i) const {
  t.chargeSharedLoad();
  t.noteAccess(&data_[i], sizeof(T), simcheck::AccessKind::kRead);
  return data_[i];
}

template <typename T>
void SharedSpan<T>::set(ThreadCtx& t, size_t i, T value) const {
  t.chargeSharedStore();
  t.noteAccess(&data_[i], sizeof(T), simcheck::AccessKind::kWrite);
  data_[i] = value;
}

}  // namespace simtomp::gpusim
