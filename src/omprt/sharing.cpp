#include "omprt/sharing.h"

#include "gpusim/block.h"
#include "gpusim/stats.h"
#include "simcheck/checker.h"
#include "simprof/metrics.h"
#include "support/log.h"

namespace simtomp::omprt {

namespace {

/// The checker keys sharing slots by group index, with a sentinel for
/// the team slot. rt::parallel stages team args through storeArg with
/// group=0, so the slot is identified by the area pointer instead.
uint32_t slotKey(const void* const* area, const void* const* team_area,
                 uint32_t group) {
  if (team_area != nullptr && area == team_area) {
    return simcheck::BlockChecker::kTeamSlot;
  }
  return group;
}

}  // namespace

SharingSpace::SharingSpace(gpusim::SharedMemory& shared,
                           gpusim::DeviceMemory& global, uint32_t bytes,
                           uint32_t maxGroups)
    : global_(&global) {
  base_ = shared.allocate(bytes, alignof(void*));
  if (base_ == nullptr) {
    SIMTOMP_WARN("sharing space of %u bytes does not fit in shared memory; "
                 "all argument staging will overflow to global memory",
                 bytes);
    bytes_ = 0;
  } else {
    bytes_ = bytes;
  }
  team_reserve_ = bytes_ >= 2 * kTeamReserveBytes ? kTeamReserveBytes : 0;
  groups_.resize(maxGroups == 0 ? 1 : maxGroups);
}

SharingSpace::~SharingSpace() {
  auto release = [this](Slot& slot) {
    if (slot.overflow != gpusim::kNullDevPtr) {
      SIMTOMP_WARN("sharing-space overflow block leaked at teardown");
      (void)global_->free(slot.overflow);
      slot.overflow = gpusim::kNullDevPtr;
    }
  };
  for (Slot& g : groups_) release(g);
  release(team_slot_);
}

uint32_t SharingSpace::slotsPerGroup(uint32_t numGroups) const {
  if (numGroups == 0 || bytes_ <= team_reserve_) return 0;
  const uint32_t usable = bytes_ - team_reserve_;
  return (usable / numGroups) / static_cast<uint32_t>(sizeof(void*));
}

void** SharingSpace::begin(gpusim::ThreadCtx& t, Slot& slot, void** slice,
                           uint32_t capacity, uint32_t numArgs) {
  SIMTOMP_CHECK(slot.area == nullptr, "nested beginSharing for one slot");
  // Process-wide observability; max/add are commutative, so snapshots
  // stay byte-identical for any host worker count.
  simprof::MetricsRegistry::global().gaugeMax(
      simprof::metric::kSharingHighWaterBytes,
      static_cast<uint64_t>(numArgs) * sizeof(void*));
  if (numArgs <= capacity && slice != nullptr) {
    slot.area = slice;
    return slot.area;
  }
  // Overflow: allocate a global-memory block for the argument pointers
  // (paper section 5.3.1), released at endSharing.
  auto ptr = global_->allocate(
      (numArgs == 0 ? 1 : numArgs) * sizeof(void*), alignof(void*));
  if (!ptr.isOk()) {
    // Recoverable per the paper's sharing-space protocol: surface the
    // exhaustion as a launch failure (the recovery chain can fall back
    // to a shape that stages fewer arguments) instead of aborting.
    throw StatusException(Status::resourceExhausted(
        "sharing-space overflow allocation failed in block " +
        std::to_string(t.blockId()) + ": " + ptr.status().message()));
  }
  slot.overflow = ptr.value();
  slot.area = reinterpret_cast<void**>(global_->raw(slot.overflow));
  ++overflow_count_;
  simprof::MetricsRegistry::global().add(
      simprof::metric::kSharingOverflowsTotal);
  t.charge(gpusim::Counter::kGlobalAlloc, t.cost().globalAccess * 4);
  t.charge(gpusim::Counter::kSharingSpaceOverflow, 0);
  return slot.area;
}

void SharingSpace::end(gpusim::ThreadCtx& t, Slot& slot) {
  SIMTOMP_CHECK(slot.area != nullptr, "endSharing without beginSharing");
  if (slot.overflow != gpusim::kNullDevPtr) {
    const Status freed = global_->free(slot.overflow);
    SIMTOMP_CHECK(freed.isOk(), "sharing overflow double free");
    slot.overflow = gpusim::kNullDevPtr;
    t.chargeGlobalStore();  // allocator bookkeeping write-back
  }
  slot.area = nullptr;
}

void** SharingSpace::beginSharing(gpusim::ThreadCtx& t, uint32_t group,
                                  uint32_t numGroups, uint32_t numArgs) {
  SIMTOMP_CHECK(group < groups_.size() && group < numGroups,
                "sharing group out of range");
  if (t.block().faultFires(simfault::FaultKind::kSharingExhausted)) {
    throw StatusException(Status::resourceExhausted(
        "[simfault] injected sharing-space exhaustion in block " +
        std::to_string(t.blockId()) + ", group " + std::to_string(group)));
  }
  const uint32_t capacity = slotsPerGroup(numGroups);
  void** slice = nullptr;
  if (capacity > 0) {
    slice = reinterpret_cast<void**>(
        base_ + team_reserve_ +
        static_cast<size_t>(group) * capacity * sizeof(void*));
  }
  void** area = begin(t, groups_[group], slice, capacity, numArgs);
  if (auto* checker = t.checker()) {
    checker->onSharingBegin(t.threadId(), group, capacity, numArgs,
                            overflowed(group));
  }
  return area;
}

void SharingSpace::storeArg(gpusim::ThreadCtx& t, uint32_t group, void** area,
                            uint32_t index, void* value) {
  if (overflowed(group)) {
    t.chargeGlobalStore();
  } else {
    t.chargeSharedStore();
  }
  t.charge(gpusim::Counter::kPayloadArgCopy, t.cost().payloadArgCopy);
  if (auto* checker = t.checker()) {
    checker->onSharingStore(t.threadId(),
                            slotKey(area, team_slot_.area, group), index);
  }
  // Block-private: an overflowed `area` lives in a transient global
  // allocation whose granules other blocks may legitimately reuse.
  t.noteBlockPrivateAccess(&area[index], sizeof(void*),
                           simcheck::AccessKind::kWrite);
  area[index] = value;
}

void** SharingSpace::fetchArgs(gpusim::ThreadCtx& t, uint32_t group) {
  SIMTOMP_CHECK(group < groups_.size(), "sharing group out of range");
  const Slot& slot = groups_[group];
  SIMTOMP_CHECK(slot.area != nullptr, "fetchArgs without beginSharing");
  if (overflowed(group)) {
    t.chargeGlobalLoad();
  } else {
    t.chargeSharedLoad();
  }
  if (auto* checker = t.checker()) {
    checker->onSharingFetch(t.threadId(), group);
  }
  t.noteBlockPrivateAccess(slot.area, sizeof(void*),
                           simcheck::AccessKind::kRead);
  return slot.area;
}

void SharingSpace::endSharing(gpusim::ThreadCtx& t, uint32_t group) {
  SIMTOMP_CHECK(group < groups_.size(), "sharing group out of range");
  end(t, groups_[group]);
  if (auto* checker = t.checker()) {
    checker->onSharingEnd(t.threadId(), group);
  }
}

bool SharingSpace::overflowed(uint32_t group) const {
  return groups_[group].overflow != gpusim::kNullDevPtr;
}

void** SharingSpace::beginTeamSharing(gpusim::ThreadCtx& t,
                                      uint32_t numArgs) {
  const uint32_t capacity =
      team_reserve_ / static_cast<uint32_t>(sizeof(void*));
  void** slice =
      team_reserve_ > 0 ? reinterpret_cast<void**>(base_) : nullptr;
  void** area = begin(t, team_slot_, slice, capacity, numArgs);
  if (auto* checker = t.checker()) {
    checker->onSharingBegin(t.threadId(), simcheck::BlockChecker::kTeamSlot,
                            capacity, numArgs,
                            team_slot_.overflow != gpusim::kNullDevPtr);
  }
  return area;
}

void** SharingSpace::fetchTeamArgs(gpusim::ThreadCtx& t) {
  SIMTOMP_CHECK(team_slot_.area != nullptr,
                "fetchTeamArgs without beginTeamSharing");
  if (team_slot_.overflow != gpusim::kNullDevPtr) {
    t.chargeGlobalLoad();
  } else {
    t.chargeSharedLoad();
  }
  if (auto* checker = t.checker()) {
    checker->onSharingFetch(t.threadId(), simcheck::BlockChecker::kTeamSlot);
  }
  t.noteBlockPrivateAccess(team_slot_.area, sizeof(void*),
                           simcheck::AccessKind::kRead);
  return team_slot_.area;
}

void SharingSpace::endTeamSharing(gpusim::ThreadCtx& t) {
  end(t, team_slot_);
  if (auto* checker = t.checker()) {
    checker->onSharingEnd(t.threadId(), simcheck::BlockChecker::kTeamSlot);
  }
}

}  // namespace simtomp::omprt
