#include "fiber/fiber.h"

#include <cstdio>

#include "support/log.h"

// ThreadSanitizer cannot follow swapcontext() on its own; tell it about
// every fiber and every switch so tsan builds of the host-parallel
// executor stay free of false positives.
#if defined(__SANITIZE_THREAD__)
#define SIMTOMP_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define SIMTOMP_TSAN 1
#endif
#endif
#ifdef SIMTOMP_TSAN
#include <sanitizer/tsan_interface.h>
#endif

namespace simtomp::fiber {

namespace {
// The scheduler driving the OS thread right now. Fibers find their way
// back to it through this pointer (set around every context switch).
thread_local FiberScheduler* g_active_scheduler = nullptr;

#ifdef SIMTOMP_TSAN
void* tsanCreateFiber() { return __tsan_create_fiber(0); }
void tsanDestroyFiber(void* f) {
  if (f != nullptr) __tsan_destroy_fiber(f);
}
void tsanSwitchTo(void* f) {
  if (f != nullptr) __tsan_switch_to_fiber(f, 0);
}
void* tsanCurrentFiber() { return __tsan_get_current_fiber(); }
#else
void* tsanCreateFiber() { return nullptr; }
void tsanDestroyFiber(void*) {}
void tsanSwitchTo(void*) {}
void* tsanCurrentFiber() { return nullptr; }
#endif
}  // namespace

Fiber::Fiber(size_t index, Entry entry, size_t stack_size,
             char* external_stack)
    : index_(index), entry_(std::move(entry)) {
  if (external_stack != nullptr) {
    stack_data_ = external_stack;
  } else {
    owned_stack_.resize(stack_size);
    stack_data_ = owned_stack_.data();
  }
  stack_bytes_ = stack_size;
  tsan_fiber_ = tsanCreateFiber();
}

Fiber::~Fiber() { tsanDestroyFiber(tsan_fiber_); }

void Fiber::trampoline() {
  FiberScheduler* sched = g_active_scheduler;
  SIMTOMP_CHECK(sched != nullptr, "fiber trampoline without a scheduler");
  Fiber* self = sched->current();
  SIMTOMP_CHECK(self != nullptr, "fiber trampoline without a current fiber");
  try {
    self->entry_();
  } catch (...) {
    sched->pending_exception_ = std::current_exception();
  }
  self->state_ = FiberState::kFinished;
  ++sched->finished_count_;
  sched->switchToScheduler();
  SIMTOMP_CHECK(false, "resumed a finished fiber");
}

FiberScheduler::FiberScheduler(size_t stack_size,
                               StackAllocator stack_allocator)
    : stack_size_(stack_size), stack_allocator_(std::move(stack_allocator)) {
  SIMTOMP_CHECK(stack_size_ >= 16 * 1024, "fiber stack too small to be safe");
}

FiberScheduler::~FiberScheduler() = default;

size_t FiberScheduler::spawn(Fiber::Entry entry) {
  SIMTOMP_CHECK(!running_, "spawn() during run() is not supported");
  SIMTOMP_CHECK(std::this_thread::get_id() == owner_thread_,
                "spawn() off the scheduler's owning thread");
  const size_t index = fibers_.size();
  char* external_stack =
      stack_allocator_ ? stack_allocator_(stack_size_) : nullptr;
  fibers_.emplace_back(
      new Fiber(index, std::move(entry), stack_size_, external_stack));
  return index;
}

Status FiberScheduler::run() {
  SIMTOMP_CHECK(!running_, "re-entrant run()");
  SIMTOMP_CHECK(std::this_thread::get_id() == owner_thread_,
                "run() off the scheduler's owning thread; fibers are "
                "confined to the host thread that created them");
  running_ = true;
  pending_exception_ = nullptr;

  while (finished_count_ < fibers_.size()) {
    bool progressed = false;
    for (auto& f : fibers_) {
      if (f->state_ != FiberState::kReady) continue;
      switchToFiber(*f);
      progressed = true;
      if (pending_exception_) {
        // A fiber escaped with an exception: stop simulating. Remaining
        // fiber stacks are discarded without unwinding (documented
        // limitation of the simulator's error path).
        running_ = false;
        std::exception_ptr e = pending_exception_;
        pending_exception_ = nullptr;
        std::rethrow_exception(e);
      }
      if (trap_step_ != 0 && step_count_ >= trap_step_) {
        // Injected kernel trap: abandon the run like the exception path
        // (remaining fiber stacks discarded without unwinding).
        running_ = false;
        return Status::internal("[simfault] injected kernel trap at step " +
                                std::to_string(step_count_) + "; " +
                                describeFiberStates());
      }
      if (step_budget_ != 0 && step_count_ >= step_budget_) {
        running_ = false;
        return Status::deadlineExceeded(
            "[simfault] watchdog: block exceeded its step budget of " +
            std::to_string(step_budget_) + "; " + describeFiberStates());
      }
    }
    if (!progressed) {
      running_ = false;
      return Status::failedPrecondition(
          "fiber deadlock: no runnable fibers; " + describeBlockedFibers());
    }
  }
  running_ = false;
  return Status::ok();
}

void FiberScheduler::yield() {
  Fiber* f = current_;
  SIMTOMP_CHECK(f != nullptr, "yield() called off-fiber");
  f->state_ = FiberState::kReady;
  switchToScheduler();
}

void FiberScheduler::block(const void* tag) {
  Fiber* f = current_;
  SIMTOMP_CHECK(f != nullptr, "block() called off-fiber");
  SIMTOMP_CHECK(tag != nullptr, "block() requires a non-null tag");
  SIMTOMP_CHECK(std::this_thread::get_id() == owner_thread_,
                "block() off the scheduler's owning thread");
  f->state_ = FiberState::kBlocked;
  f->wait_tag_ = tag;
  switchToScheduler();
}

void FiberScheduler::unblockAll(const void* tag) {
  SIMTOMP_CHECK(tag != nullptr, "unblockAll() requires a non-null tag");
  SIMTOMP_CHECK(std::this_thread::get_id() == owner_thread_,
                "unblockAll() off the scheduler's owning thread");
  for (auto& f : fibers_) {
    if (f->state_ == FiberState::kBlocked && f->wait_tag_ == tag) {
      f->state_ = FiberState::kReady;
      f->wait_tag_ = nullptr;
    }
  }
}

void FiberScheduler::switchToFiber(Fiber& f) {
  SIMTOMP_CHECK(f.state_ == FiberState::kReady, "switch to non-ready fiber");
  ++step_count_;
  FiberScheduler* prev_sched = g_active_scheduler;
  Fiber* prev_fiber = current_;
  g_active_scheduler = this;
  current_ = &f;
  f.state_ = FiberState::kRunning;
  if (!f.started_) {
    f.started_ = true;
    getcontext(&f.context_);
    f.context_.uc_stack.ss_sp = f.stack_data_;
    f.context_.uc_stack.ss_size = f.stack_bytes_;
    f.context_.uc_link = nullptr;  // fibers exit via switchToScheduler()
    makecontext(&f.context_, &Fiber::trampoline, 0);
  }
  if (tsan_scheduler_fiber_ == nullptr) {
    tsan_scheduler_fiber_ = tsanCurrentFiber();
  }
  tsanSwitchTo(f.tsan_fiber_);
  swapcontext(&scheduler_context_, &f.context_);
  current_ = prev_fiber;
  g_active_scheduler = prev_sched;
}

void FiberScheduler::switchToScheduler() {
  Fiber* f = current_;
  SIMTOMP_CHECK(f != nullptr, "switchToScheduler() called off-fiber");
  tsanSwitchTo(g_active_scheduler != nullptr
                   ? g_active_scheduler->tsan_scheduler_fiber_
                   : nullptr);
  swapcontext(&f->context_, &scheduler_context_);
}

namespace {
// Wait tags are opaque pointers; printing them raw would leak ASLR
// into diagnostics that must be byte-identical across runs and host
// worker counts. Number them by first appearance in fiber-index order
// instead.
size_t tagOrdinal(std::vector<const void*>& tags, const void* tag) {
  for (size_t i = 0; i < tags.size(); ++i) {
    if (tags[i] == tag) return i;
  }
  tags.push_back(tag);
  return tags.size() - 1;
}
}  // namespace

std::string FiberScheduler::describeBlockedFibers() const {
  std::string out;
  std::vector<const void*> tags;
  size_t blocked = 0;
  for (const auto& f : fibers_) {
    if (f->state_ != FiberState::kBlocked) continue;
    ++blocked;
    const size_t ordinal = tagOrdinal(tags, f->wait_tag_);
    if (blocked <= 8) {
      out += "fiber " + std::to_string(f->index_) + " waits on tag#" +
             std::to_string(ordinal) + "; ";
    }
  }
  out += std::to_string(blocked) + " blocked of " +
         std::to_string(fibers_.size()) + " total";
  return out;
}

std::string FiberScheduler::describeFiberStates() const {
  std::string out;
  std::vector<const void*> tags;
  size_t ready = 0;
  size_t blocked = 0;
  size_t finished = 0;
  size_t listed = 0;
  for (const auto& f : fibers_) {
    switch (f->state_) {
      case FiberState::kFinished:
        ++finished;
        continue;
      case FiberState::kReady:
      case FiberState::kRunning:  // not reachable from the scheduler loop
        ++ready;
        break;
      case FiberState::kBlocked:
        ++blocked;
        break;
    }
    if (++listed <= 8) {
      out += "fiber " + std::to_string(f->index_);
      if (f->state_ == FiberState::kBlocked) {
        out += " blocked on tag#" +
               std::to_string(tagOrdinal(tags, f->wait_tag_));
      } else {
        out += " runnable";
      }
      out += "; ";
    }
  }
  out += std::to_string(ready) + " runnable, " + std::to_string(blocked) +
         " blocked, " + std::to_string(finished) + " finished of " +
         std::to_string(fibers_.size());
  return out;
}

}  // namespace simtomp::fiber
