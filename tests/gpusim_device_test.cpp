// Unit tests for Device: launch validation, SM wave scheduling, and
// kernel statistics.
#include <gtest/gtest.h>

#include <atomic>

#include "gpusim/device.h"

namespace simtomp::gpusim {
namespace {

TEST(ArchSpecTest, PresetsValidate) {
  EXPECT_TRUE(ArchSpec::nvidiaA100().validate().isOk());
  EXPECT_TRUE(ArchSpec::amdMI100().validate().isOk());
  EXPECT_TRUE(ArchSpec::testTiny().validate().isOk());
}

TEST(ArchSpecTest, AmdPresetTraits) {
  const ArchSpec amd = ArchSpec::amdMI100();
  EXPECT_EQ(amd.vendor, Vendor::kAmd);
  EXPECT_EQ(amd.warpSize, 64u);
  EXPECT_FALSE(amd.hasWarpLevelBarrier);
}

TEST(ArchSpecTest, InvalidSpecsRejected) {
  ArchSpec spec = ArchSpec::testTiny();
  spec.warpSize = 24;  // not a power of two
  EXPECT_FALSE(spec.validate().isOk());
  spec = ArchSpec::testTiny();
  spec.warpSize = 128;  // wider than LaneMask
  EXPECT_FALSE(spec.validate().isOk());
  spec = ArchSpec::testTiny();
  spec.numSMs = 0;
  EXPECT_FALSE(spec.validate().isOk());
  spec = ArchSpec::testTiny();
  spec.maxThreadsPerBlock = 100;  // not a warp multiple
  EXPECT_FALSE(spec.validate().isOk());
}

TEST(DeviceTest, RejectsBadLaunchConfigs) {
  Device dev(ArchSpec::testTiny());
  EXPECT_FALSE(dev.launch({0, 32}, [](ThreadCtx&) {}).isOk());
  EXPECT_FALSE(dev.launch({1, 0}, [](ThreadCtx&) {}).isOk());
  EXPECT_FALSE(dev.launch({1, 100000}, [](ThreadCtx&) {}).isOk());
}

TEST(DeviceTest, RunsEveryThreadOfEveryBlock) {
  Device dev(ArchSpec::testTiny());
  std::atomic<uint64_t> count{0};
  auto stats = dev.launch({5, 64}, [&](ThreadCtx&) { count++; });
  ASSERT_TRUE(stats.isOk());
  EXPECT_EQ(count.load(), 5u * 64u);
  EXPECT_EQ(stats.value().numBlocks, 5u);
  EXPECT_EQ(stats.value().threadsPerBlock, 64u);
}

TEST(DeviceTest, KernelLaunchOverheadAlwaysCharged) {
  CostModel cost;
  Device dev(ArchSpec::testTiny(), cost);
  auto stats = dev.launch({1, 32}, [](ThreadCtx&) {});
  ASSERT_TRUE(stats.isOk());
  EXPECT_EQ(stats.value().cycles, cost.kernelLaunch);
}

TEST(DeviceTest, WavesComputedFromSmCount) {
  Device dev(ArchSpec::testTiny());  // 2 SMs
  auto one = dev.launch({2, 32}, [](ThreadCtx& t) { t.work(10); });
  ASSERT_TRUE(one.isOk());
  EXPECT_EQ(one.value().waves, 1u);
  auto three = dev.launch({5, 32}, [](ThreadCtx& t) { t.work(10); });
  ASSERT_TRUE(three.isOk());
  EXPECT_EQ(three.value().waves, 3u);
}

TEST(DeviceTest, MoreWavesMeanProportionallyMoreCycles) {
  CostModel cost;
  Device dev(ArchSpec::testTiny(), cost);  // 2 SMs
  const Kernel kernel = [](ThreadCtx& t) { t.work(1000); };
  auto w1 = dev.launch({2, 32}, kernel);
  auto w4 = dev.launch({8, 32}, kernel);
  ASSERT_TRUE(w1.isOk());
  ASSERT_TRUE(w4.isOk());
  const uint64_t body1 = w1.value().cycles - cost.kernelLaunch;
  const uint64_t body4 = w4.value().cycles - cost.kernelLaunch;
  EXPECT_EQ(body4, 4 * body1);
}

TEST(DeviceTest, UnbalancedBlocksGoToLeastLoadedSm) {
  CostModel cost;
  Device dev(ArchSpec::testTiny(), cost);  // 2 SMs
  // Blocks: one heavy (block 0), three light. Greedy placement puts the
  // three light ones on the other SM.
  auto stats = dev.launch({4, 32}, [](ThreadCtx& t) {
    t.work(t.blockId() == 0 ? 9000 : 1000);
  });
  ASSERT_TRUE(stats.isOk());
  const uint64_t body = stats.value().cycles - cost.kernelLaunch;
  EXPECT_EQ(body, 9000u * cost.aluOp);
}

TEST(DeviceTest, StatsAggregateBusyAndCounters) {
  Device dev(ArchSpec::testTiny());
  auto stats = dev.launch({3, 32}, [](ThreadCtx& t) {
    t.chargeGlobalLoad();
    t.work(5);
  });
  ASSERT_TRUE(stats.isOk());
  EXPECT_EQ(stats.value().counters.get(Counter::kGlobalLoad), 3u * 32u);
  EXPECT_EQ(stats.value().busyCycles,
            3u * 32u * (dev.costModel().globalAccess + 5));
}

TEST(DeviceTest, BlockSetupHookRunsPerBlock) {
  Device dev(ArchSpec::testTiny());
  std::atomic<int> hooks{0};  // hooks run concurrently under hostWorkers>1
  auto stats = dev.launch(
      {4, 32}, [](ThreadCtx&) {}, [&](BlockEngine&) { ++hooks; });
  ASSERT_TRUE(stats.isOk());
  EXPECT_EQ(hooks.load(), 4);
}

TEST(DeviceTest, BlockErrorIsPropagatedWithBlockId) {
  Device dev(ArchSpec::testTiny());
  int tag = 0;
  auto stats = dev.launch({3, 32}, [&tag](ThreadCtx& t) {
    if (t.blockId() == 2 && t.threadId() == 0) {
      // Block on a tag nobody releases: simulated deadlock.
      t.block().scheduler().block(&tag);
    }
  });
  ASSERT_FALSE(stats.isOk());
  EXPECT_NE(stats.status().message().find("block 2"), std::string::npos);
}

TEST(DeviceTest, ScaledCostModelScalesCycles) {
  const CostModel base;
  Device dev1(ArchSpec::testTiny(), base);
  Device dev2(ArchSpec::testTiny(), base.scaled(3));
  const Kernel kernel = [](ThreadCtx& t) {
    t.work(100);
    t.chargeGlobalLoad(10);
    t.syncBlock();
  };
  auto s1 = dev1.launch({1, 32}, kernel);
  auto s2 = dev2.launch({1, 32}, kernel);
  ASSERT_TRUE(s1.isOk());
  ASSERT_TRUE(s2.isOk());
  EXPECT_EQ(3 * s1.value().cycles, s2.value().cycles);
}

TEST(DeviceTest, PartialFinalWarpRunsAllThreads) {
  // threadsPerBlock need not be a warp multiple: 48 threads on a
  // 32-wide warp leaves a 16-lane partial final warp whose collectives
  // must still converge (LaunchConfig documents this as supported).
  Device dev(ArchSpec::testTiny());
  std::atomic<uint32_t> ran{0};
  LaunchConfig config;
  config.numBlocks = 2;
  config.threadsPerBlock = 48;
  auto stats = dev.launch(config, [&](ThreadCtx& t) {
    t.syncWarp(fullMask(32));
    t.syncBlock();
    ran++;
  });
  ASSERT_TRUE(stats.isOk()) << stats.status().toString();
  EXPECT_EQ(ran.load(), 2u * 48u);
  EXPECT_EQ(stats.value().threadsPerBlock, 48u);
}

TEST(KernelStatsTest, SummaryMentionsNonZeroCounters) {
  KernelStats stats;
  stats.cycles = 123;
  stats.counters.add(Counter::kWarpSync, 7);
  const std::string s = stats.summary();
  EXPECT_NE(s.find("cycles=123"), std::string::npos);
  EXPECT_NE(s.find("warp_sync=7"), std::string::npos);
  EXPECT_EQ(s.find("atomic_rmw"), std::string::npos);
}

TEST(CounterSetTest, MergeAdds) {
  CounterSet a;
  CounterSet b;
  a.add(Counter::kSimdLoop, 2);
  b.add(Counter::kSimdLoop, 3);
  b.add(Counter::kBlockSync);
  a.merge(b);
  EXPECT_EQ(a.get(Counter::kSimdLoop), 5u);
  EXPECT_EQ(a.get(Counter::kBlockSync), 1u);
}

TEST(CounterSetTest, MergeIsAssociativeAndCommutative) {
  // The host-parallel determinism guarantee leans on per-block counter
  // merges giving the same totals no matter how blocks are grouped —
  // i.e. merge must be associative and commutative.
  CounterSet a;
  a.add(Counter::kAluWork, 11);
  a.add(Counter::kAtomicRmw, 3);
  CounterSet b;
  b.add(Counter::kAluWork, 5);
  b.add(Counter::kGlobalLoad, 7);
  CounterSet c;
  c.add(Counter::kAtomicRmw, 2);
  c.add(Counter::kBlockSync, 1);

  CounterSet ab_c = a;  // (a + b) + c
  ab_c.merge(b);
  ab_c.merge(c);
  CounterSet bc = b;  // a + (b + c)
  bc.merge(c);
  CounterSet a_bc = a;
  a_bc.merge(bc);
  EXPECT_EQ(ab_c.values, a_bc.values);

  CounterSet ba = b;  // b + a == a + b
  ba.merge(a);
  CounterSet ab = a;
  ab.merge(b);
  EXPECT_EQ(ab.values, ba.values);
}

}  // namespace
}  // namespace simtomp::gpusim
