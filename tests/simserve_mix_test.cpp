// Mix grammar, seeded generation and replay tests.
#include <gtest/gtest.h>

#include <string>

#include "hostrt/device_manager.h"
#include "simserve/mix.h"

namespace simtomp::simserve {
namespace {

using gpusim::ArchSpec;

TEST(MixTest, GeneratorIsDeterministic) {
  MixProfile profile;
  profile.seed = 7;
  profile.requests = 48;
  profile.tenants = 3;
  profile.pumpEvery = 16;
  profile.faultPermille = 50;
  const std::string a = generateMix(profile).toString();
  const std::string b = generateMix(profile).toString();
  EXPECT_EQ(a, b);
  profile.seed = 8;
  EXPECT_NE(a, generateMix(profile).toString());
}

TEST(MixTest, TextRoundTrips) {
  MixProfile profile;
  profile.requests = 32;
  profile.faultPermille = 100;
  const Mix mix = generateMix(profile);
  const std::string text = mix.toString();
  const Result<Mix> parsed = parseMixText(text);
  ASSERT_TRUE(parsed.isOk()) << parsed.status().toString();
  EXPECT_EQ(parsed.value().toString(), text);
  EXPECT_EQ(parsed.value().requestCount(), mix.requestCount());
}

TEST(MixTest, ParserRejectsBadInput) {
  const char* bad[] = {
      "launch t0 axpy trip=64",            // unknown directive
      "req t0 warp trip=64",               // unknown kernel
      "req t0 axpy trip=64 color=red",     // unknown key
      "req t0 axpy trip=sixty",            // non-numeric value
      "req t0 axpy simdlen=4",             // missing trip
      "req t0 axpy trip=64 simdlen=0",     // zero simdlen
      "tenant",                            // missing name
      "tenant t0 priority",                // not key=value
      "tenant t0 color=red",               // unknown tenant key
      "tenant t0 deadline=soon",           // non-numeric deadline
  };
  for (const char* text : bad) {
    const Result<Mix> parsed = parseMixText(text);
    EXPECT_FALSE(parsed.isOk()) << text;
    if (!parsed.isOk()) {
      EXPECT_NE(parsed.status().message().find("line 1"), std::string::npos)
          << text;
    }
  }
  EXPECT_TRUE(parseMixText("# only a comment\n\n").isOk());
}

TEST(MixTest, ParserRejectsDuplicateKeys) {
  const Result<Mix> dup_tenant =
      parseMixText("tenant t0 priority=1 priority=2");
  ASSERT_FALSE(dup_tenant.isOk());
  EXPECT_NE(dup_tenant.status().message().find("duplicate tenant key"),
            std::string::npos);
  const Result<Mix> dup_req =
      parseMixText("req t0 axpy trip=64 simdlen=2 trip=32");
  ASSERT_FALSE(dup_req.isOk());
  EXPECT_NE(dup_req.status().message().find("duplicate req key"),
            std::string::npos);
}

TEST(MixTest, SloKeysRoundTripAndDefaultsStayOffTheWire) {
  // deadline=/retries= round-trip byte-exactly in canonical order.
  const std::string text =
      "# simserve mix v1\n"
      "tenant a priority=2 inflight=8 queued=16 deadline=4096 retries=1\n"
      "req a axpy trip=64 simdlen=4 deadline=0\n"
      "req a axpy trip=64 simdlen=4 fault=device_lost_post:count=1 "
      "deadline=8192\n"
      "pump\n"
      "drain\n";
  const Result<Mix> parsed = parseMixText(text);
  ASSERT_TRUE(parsed.isOk()) << parsed.status().toString();
  EXPECT_EQ(parsed.value().toString(), text);
  EXPECT_EQ(parsed.value().ops[0].tenant.deadlineCycles, 4096u);
  EXPECT_EQ(parsed.value().ops[0].tenant.maxRetries, 1u);
  EXPECT_EQ(parsed.value().ops[1].deadline, 0u);
  EXPECT_EQ(parsed.value().ops[2].deadline, 8192u);

  // Tenants and requests at the SLO defaults serialize without the new
  // keys, so mixes recorded before PR 9 keep their exact bytes.
  const std::string legacy =
      "# simserve mix v1\n"
      "tenant a priority=1 inflight=64 queued=256\n"
      "req a axpy trip=64 simdlen=4\n";
  const Result<Mix> old = parseMixText(legacy);
  ASSERT_TRUE(old.isOk());
  EXPECT_EQ(old.value().toString(), legacy);
  EXPECT_EQ(old.value().ops[0].tenant.deadlineCycles, kNoDeadline);
  EXPECT_EQ(old.value().ops[1].deadline, kInheritDeadline);
}

TEST(MixTest, ReplayCountsDeadlineSheds) {
  // A zero-budget request can never be met (dispatch alone costs
  // kDispatchCycles), so replay must shed it as DEADLINE_EXCEEDED and
  // account it separately from quota sheds.
  const char* text =
      "tenant a priority=1 inflight=8 queued=8\n"
      "req a axpy trip=64 simdlen=4\n"
      "req a axpy trip=64 simdlen=4 deadline=0\n"
      "pump\n"
      "drain\n";
  const Result<Mix> mix = parseMixText(text);
  ASSERT_TRUE(mix.isOk()) << mix.status().toString();

  hostrt::DeviceManager mgr({ArchSpec::testTiny()});
  LaunchService service(mgr);
  const Result<ReplayReport> report = replayMix(service, mix.value());
  ASSERT_TRUE(report.isOk()) << report.status().toString();
  EXPECT_EQ(report.value().submitted, 2u);
  EXPECT_EQ(report.value().admitted, 1u);
  EXPECT_EQ(report.value().deadlineShed, 1u);
  EXPECT_EQ(report.value().verified, 1u);
  EXPECT_NE(report.value().toString().find("deadline_shed=1"),
            std::string::npos);
  EXPECT_EQ(service.tenantStats("a").deadlineShed, 1u);
}

TEST(MixTest, ReplayCompletesAndVerifies) {
  MixProfile profile;
  profile.seed = 3;
  profile.requests = 24;
  profile.tenants = 2;
  profile.pumpEvery = 8;
  const Mix mix = generateMix(profile);

  hostrt::DeviceManager mgr({ArchSpec::testTiny(), ArchSpec::testTiny()});
  LaunchService service(mgr);
  const Result<ReplayReport> report = replayMix(service, mix);
  ASSERT_TRUE(report.isOk()) << report.status().toString();
  EXPECT_EQ(report.value().submitted, 24u);
  EXPECT_EQ(report.value().admitted, 24u);
  EXPECT_EQ(report.value().verified, 24u);
  EXPECT_EQ(report.value().verifyFailures, 0u);
  EXPECT_EQ(service.queuedRequests(), 0u);
}

TEST(MixTest, ReplayMigratesInjectedDeviceLoss) {
  const char* text =
      "tenant a priority=1 inflight=64 queued=64\n"
      "req a axpy trip=64 simdlen=4\n"
      "req a axpy trip=64 simdlen=4 fault=device_lost_post:count=1\n"
      "req a stencil trip=64 simdlen=2\n"
      "pump\n"
      "drain\n";
  const Result<Mix> mix = parseMixText(text);
  ASSERT_TRUE(mix.isOk()) << mix.status().toString();

  hostrt::DeviceManager mgr({ArchSpec::testTiny(), ArchSpec::testTiny()});
  LaunchService service(mgr);
  const Result<ReplayReport> report = replayMix(service, mix.value());
  ASSERT_TRUE(report.isOk()) << report.status().toString();
  EXPECT_EQ(report.value().verified, 3u);
  const TenantStats stats = service.tenantStats("a");
  EXPECT_EQ(stats.completed, 3u);
  EXPECT_EQ(stats.migrated, 1u);
  EXPECT_EQ(stats.failed, 0u);
}

}  // namespace
}  // namespace simtomp::simserve
