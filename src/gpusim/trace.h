// Execution tracing: record per-block spans on the modeled SM timeline
// and emit Chrome trace-event JSON (chrome://tracing, Perfetto).
//
// Attach a TraceRecorder to a Device before launching; every block
// becomes one complete ("X") event on its SM's track and every kernel
// a span on a dedicated track. Timestamps are simulator cycles.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "support/status.h"

namespace simtomp::gpusim {

class TraceRecorder {
 public:
  struct Event {
    std::string name;
    uint32_t track = 0;  ///< SM id, or kKernelTrack for kernel spans
    uint64_t startCycle = 0;
    uint64_t durationCycles = 0;
  };

  static constexpr uint32_t kKernelTrack = 0xFFFFFFFFu;

  void recordBlock(uint32_t block_id, uint32_t sm_id, uint64_t start,
                   uint64_t duration);
  void recordKernel(std::string name, uint64_t duration);
  void clear() { events_.clear(); }

  [[nodiscard]] const std::vector<Event>& events() const { return events_; }
  [[nodiscard]] size_t size() const { return events_.size(); }

  /// Serialize as a Chrome trace-event JSON array.
  void writeChromeJson(std::ostream& out) const;
  Status writeChromeJson(const std::string& path) const;

 private:
  std::vector<Event> events_;
};

}  // namespace simtomp::gpusim
