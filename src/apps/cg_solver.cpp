#include "apps/cg_solver.h"

#include <cmath>

#include "dsl/dsl.h"
#include "support/rng.h"

namespace simtomp::apps {

namespace {

using gpusim::GlobalSpan;
using omprt::OmpContext;

struct DeviceCg {
  GlobalSpan<uint32_t> rowPtr;
  GlobalSpan<uint32_t> colIdx;
  GlobalSpan<double> values;
  GlobalSpan<double> x, r, p, q, b;
  GlobalSpan<double> scalar;  ///< one-slot accumulator for dot products
};

/// Launch helper: accumulate cycles and launch count.
class KernelRunner {
 public:
  KernelRunner(gpusim::Device& device, CgResult& result)
      : device_(&device), result_(&result) {}

  template <typename Region>
  Status run(const dsl::LaunchSpec& spec, uint64_t* bucket, Region&& region) {
    auto stats = dsl::target(*device_, spec, std::forward<Region>(region));
    if (!stats.isOk()) return stats.status();
    result_->totalCycles += stats.value().cycles;
    if (bucket != nullptr) *bucket += stats.value().cycles;
    result_->kernelLaunches += 1;
    return Status::ok();
  }

 private:
  gpusim::Device* device_;
  CgResult* result_;
};

}  // namespace

CgWorkload generateCgPoisson(uint32_t grid, uint64_t seed) {
  SIMTOMP_CHECK(grid >= 2, "Poisson grid must be at least 2x2");
  CgWorkload w;
  const uint32_t n = grid * grid;
  w.A.numRows = n;
  w.A.numCols = n;
  w.A.rowPtr.reserve(n + 1);
  w.A.rowPtr.push_back(0);
  // 5-point Laplacian: 4 on the diagonal, -1 to mesh neighbours.
  for (uint32_t row = 0; row < n; ++row) {
    const uint32_t i = row / grid;
    const uint32_t j = row % grid;
    auto push = [&w](uint32_t col, double value) {
      w.A.colIdx.push_back(col);
      w.A.values.push_back(value);
    };
    if (i > 0) push(row - grid, -1.0);
    if (j > 0) push(row - 1, -1.0);
    push(row, 4.0);
    if (j + 1 < grid) push(row + 1, -1.0);
    if (i + 1 < grid) push(row + grid, -1.0);
    w.A.rowPtr.push_back(static_cast<uint32_t>(w.A.colIdx.size()));
  }
  Rng rng(seed);
  w.b.resize(n);
  for (double& v : w.b) v = rng.nextDouble(-1.0, 1.0);
  return w;
}

Result<CgResult> runCg(gpusim::Device& device, const CgWorkload& w,
                       const CgOptions& options) {
  const uint32_t n = w.A.numRows;
  CgResult result;

  // ---- Resident device data (the `target data` region) ----
  DeviceCg d;
  auto alloc = [&](auto& slot, auto host_or_size) -> Status {
    using T = std::remove_reference_t<decltype(slot.raw(0))>;
    if constexpr (std::is_integral_v<std::decay_t<decltype(host_or_size)>>) {
      auto s = zeroDevice<T>(device, host_or_size);
      if (!s.isOk()) return s.status();
      slot = s.value();
    } else {
      auto s = toDevice<T>(device, host_or_size);
      if (!s.isOk()) return s.status();
      slot = s.value();
    }
    return Status::ok();
  };
  Status st;
  if (!(st = alloc(d.rowPtr, std::span<const uint32_t>(w.A.rowPtr))).isOk())
    return st;
  if (!(st = alloc(d.colIdx, std::span<const uint32_t>(w.A.colIdx))).isOk())
    return st;
  if (!(st = alloc(d.values, std::span<const double>(w.A.values))).isOk())
    return st;
  if (!(st = alloc(d.b, std::span<const double>(w.b))).isOk()) return st;
  if (!(st = alloc(d.x, size_t{n})).isOk()) return st;
  if (!(st = alloc(d.r, size_t{n})).isOk()) return st;
  if (!(st = alloc(d.p, size_t{n})).isOk()) return st;
  if (!(st = alloc(d.q, size_t{n})).isOk()) return st;
  if (!(st = alloc(d.scalar, size_t{1})).isOk()) return st;

  auto freeAll = [&] {
    (void)device.freeArray(d.rowPtr.data());
    (void)device.freeArray(d.colIdx.data());
    (void)device.freeArray(d.values.data());
    (void)device.freeArray(d.b.data());
    (void)device.freeArray(d.x.data());
    (void)device.freeArray(d.r.data());
    (void)device.freeArray(d.p.data());
    (void)device.freeArray(d.q.data());
    (void)device.freeArray(d.scalar.data());
  };

  // ---- Launch shapes ----
  dsl::LaunchSpec flat;  // element-wise kernels: 2 levels, SPMD
  flat.numTeams = options.numTeams;
  flat.threadsPerTeam = options.threadsPerTeam;
  dsl::LaunchSpec spmv = flat;  // SpMV: 3 levels, generic-SIMD rows
  spmv.parallelMode = omprt::ExecMode::kGeneric;
  spmv.simdlen = options.simdlen;
  dsl::LaunchSpec dot = flat;   // dot products: hierarchical reduction
  dot.simdlen = 16;

  KernelRunner runner(device, result);

  // q = A * v
  auto runSpmv = [&](const GlobalSpan<double>& v,
                     const GlobalSpan<double>& out) {
    return runner.run(spmv, &result.spmvCycles, [&](OmpContext& ctx) {
      const omprt::rt::Range range = omprt::rt::distributeStatic(ctx, n);
      auto row_body = [&](OmpContext& inner, uint64_t logical) {
        const uint64_t row = range.begin + logical;
        gpusim::ThreadCtx& t = inner.gpu();
        const uint32_t begin = d.rowPtr.get(t, row);
        const uint32_t end = d.rowPtr.get(t, row + 1);
        const double sum = dsl::simdReduceAdd(
            inner, end - begin, [&, begin](OmpContext& c, uint64_t k) {
              gpusim::ThreadCtx& ct = c.gpu();
              const uint32_t col = d.colIdx.get(ct, begin + k);
              ct.fma();
              return d.values.get(ct, begin + k) * v.get(ct, col);
            });
        if (inner.simdGroupId() == 0) out.set(t, row, sum);
      };
      dsl::parallelFor(ctx, range.size(), row_body, spmv.parallelConfig());
    });
  };

  // scalar = dot(u, v)
  auto runDot = [&](const GlobalSpan<double>& u, const GlobalSpan<double>& v) {
    d.scalar.raw(0) = 0.0;  // host-side reset between launches
    return runner.run(dot, &result.dotCycles, [&](OmpContext& ctx) {
      dsl::parallel(
          ctx,
          [&](OmpContext& inner) {
            const uint64_t lanes =
                inner.numThreads() * inner.simdGroupSize();
            const uint64_t start = inner.threadNum() * inner.simdGroupSize() +
                                   inner.simdGroupId();
            const uint64_t stride =
                static_cast<uint64_t>(inner.numTeams()) * lanes;
            double local = 0.0;
            for (uint64_t i = inner.teamNum() * lanes + start; i < n;
                 i += stride) {
              gpusim::ThreadCtx& t = inner.gpu();
              local += u.get(t, i) * v.get(t, i);
              t.fma();
            }
            const double team_total = dsl::teamReduceAdd(inner, local);
            if (dsl::isMaster(inner)) {
              d.scalar.atomicAdd(inner.gpu(), 0, team_total);
            }
          },
          omprt::ParallelConfig{omprt::ExecMode::kSPMD, dot.simdlen});
    });
  };

  // y = y + a * z   (and variants)
  auto runAxpy = [&](double a, const GlobalSpan<double>& z,
                     const GlobalSpan<double>& y) {
    return runner.run(flat, &result.axpyCycles, [&](OmpContext& ctx) {
      auto body = [&, a](OmpContext& inner, uint64_t i) {
        gpusim::ThreadCtx& t = inner.gpu();
        t.fma();
        y.set(t, i, y.get(t, i) + a * z.get(t, i));
      };
      const omprt::rt::Range range = omprt::rt::distributeStatic(ctx, n);
      auto shifted = [&body, base = range.begin](OmpContext& inner,
                                                 uint64_t logical) {
        body(inner, base + logical);
      };
      dsl::parallelFor(ctx, range.size(), shifted, flat.parallelConfig());
    });
  };

  // p = r + beta * p
  auto runUpdateP = [&](double beta) {
    return runner.run(flat, &result.axpyCycles, [&](OmpContext& ctx) {
      const omprt::rt::Range range = omprt::rt::distributeStatic(ctx, n);
      auto body = [&, beta, base = range.begin](OmpContext& inner,
                                                uint64_t logical) {
        const uint64_t i = base + logical;
        gpusim::ThreadCtx& t = inner.gpu();
        t.fma();
        d.p.set(t, i, d.r.get(t, i) + beta * d.p.get(t, i));
      };
      dsl::parallelFor(ctx, range.size(), body, flat.parallelConfig());
    });
  };

  // ---- CG: x = 0, r = p = b ----
  if (!(st = runner.run(flat, &result.axpyCycles, [&](OmpContext& ctx) {
        const omprt::rt::Range range = omprt::rt::distributeStatic(ctx, n);
        auto body = [&, base = range.begin](OmpContext& inner,
                                            uint64_t logical) {
          const uint64_t i = base + logical;
          gpusim::ThreadCtx& t = inner.gpu();
          const double bi = d.b.get(t, i);
          d.x.set(t, i, 0.0);
          d.r.set(t, i, bi);
          d.p.set(t, i, bi);
        };
        dsl::parallelFor(ctx, range.size(), body, flat.parallelConfig());
      })).isOk()) {
    freeAll();
    return st;
  }

  if (!(st = runDot(d.b, d.b)).isOk()) {
    freeAll();
    return st;
  }
  const double b_norm2 = d.scalar.raw(0);
  if (!(st = runDot(d.r, d.r)).isOk()) {
    freeAll();
    return st;
  }
  double rr = d.scalar.raw(0);
  const double stop = options.relativeTolerance * options.relativeTolerance *
                      b_norm2;

  while (result.iterations < options.maxIterations && rr > stop) {
    if (!(st = runSpmv(d.p, d.q)).isOk()) break;          // q = A p
    if (!(st = runDot(d.p, d.q)).isOk()) break;           // pq
    const double alpha = rr / d.scalar.raw(0);
    if (!(st = runAxpy(alpha, d.p, d.x)).isOk()) break;   // x += a p
    if (!(st = runAxpy(-alpha, d.q, d.r)).isOk()) break;  // r -= a q
    if (!(st = runDot(d.r, d.r)).isOk()) break;           // rr'
    const double rr_new = d.scalar.raw(0);
    const double beta = rr_new / rr;
    rr = rr_new;
    if (!(st = runUpdateP(beta)).isOk()) break;           // p = r + b p
    ++result.iterations;
  }
  if (!st.isOk()) {
    freeAll();
    return st;
  }

  result.converged = rr <= stop;
  result.relativeResidual = std::sqrt(rr / b_norm2);

  // ---- Verify against the host: residual of the device solution ----
  const std::vector<double> x_host = toHost(d.x);
  const std::vector<double> Ax = spmvReference(w.A, x_host);
  double res2 = 0.0;
  for (uint32_t i = 0; i < n; ++i) {
    const double diff = Ax[i] - w.b[i];
    res2 += diff * diff;
  }
  const double true_residual = std::sqrt(res2 / b_norm2);
  result.verified =
      result.converged && true_residual < 10.0 * options.relativeTolerance;
  freeAll();
  return result;
}

}  // namespace simtomp::apps
