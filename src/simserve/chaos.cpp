#include "simserve/chaos.h"

#include <algorithm>
#include <map>
#include <memory>
#include <sstream>
#include <vector>

#include "hostrt/device_manager.h"
#include "simprof/metrics.h"
#include "simserve/mix.h"
#include "simserve/service.h"
#include "support/rng.h"

namespace simtomp::simserve {

namespace {

constexpr uint64_t kTile = 8;
// Forked stream ids: one per campaign axis, so a draw on one axis
// never perturbs another's sequence.
constexpr uint64_t kTenantStream = 1;
constexpr uint64_t kArrivalStream = 2;
constexpr uint64_t kFaultStream = 3;

const char* const kTenantNames[3] = {"lo", "mid", "hi"};

/// Everything the harness remembers about one admitted request, enough
/// to re-derive what the service *must* report about it.
struct Tracked {
  uint64_t id = 0;
  uint32_t tenant = 0;   ///< index into kTenantNames
  uint64_t deadline = kNoDeadline;  ///< resolved budget
  size_t kernel = 0;
  uint64_t trip = 0;
  std::shared_ptr<std::vector<uint64_t>> out;
};

/// Mutable state for one seed's run.
struct SeedRun {
  uint64_t seed = 0;
  TenantSpec specs[3];
  std::vector<Tracked> tracked;
  uint64_t drains = 0;
  uint64_t faultsArmed = 0;
  uint64_t violationsBefore = 0;
};

omprt::TargetConfig requestConfig(uint64_t trip, uint32_t simdlen,
                                  const std::string& fault,
                                  uint32_t workers) {
  omprt::TargetConfig config;
  config.teamsMode = omprt::ExecMode::kSPMD;
  config.numTeams = 2;
  config.threadsPerTeam = 64;
  config.parallelMode = omprt::ExecMode::kSPMD;
  config.simdlen = simdlen;
  config.hostWorkers = workers;
  config.check.mode = simcheck::CheckMode::kOff;
  config.tripCount = trip;
  // Pin the plan ("off" for clean requests) so SIMTOMP_FAULT cannot
  // leak into the campaign.
  config.fault.spec = fault.empty() ? "off" : fault;
  config.watchdogSteps = 2000000;
  return config;
}

void report(std::vector<ChaosViolation>& violations, uint64_t seed,
            const char* invariant, std::string detail) {
  simprof::MetricsRegistry::global().add(
      simprof::metric::kServeChaosViolationsTotal);
  violations.push_back(ChaosViolation{seed, invariant, std::move(detail)});
}

/// Admit one request and remember it. Shedding statuses are expected
/// service behavior; anything else is a violation.
void submitOne(LaunchService& service, SeedRun& run,
               std::vector<ChaosViolation>& violations, uint32_t tenant,
               size_t kernel, uint64_t trip, uint32_t simdlen,
               uint64_t deadlineOverride, const std::string& fault,
               uint32_t workers) {
  auto out = std::make_shared<std::vector<uint64_t>>(trip, 0);
  const std::string& name = mixKernelNames()[kernel];
  const std::string fingerprint = name + "/t" + std::to_string(trip) + "/s" +
                                  std::to_string(simdlen);
  const Result<uint64_t> admitted = service.submit(
      kTenantNames[tenant], requestConfig(trip, simdlen, fault, workers),
      makeMixRegion(kernel, trip, out), fingerprint, deadlineOverride);
  if (admitted.isOk()) {
    Tracked t;
    t.id = admitted.value();
    t.tenant = tenant;
    t.deadline = deadlineOverride == kInheritDeadline
                     ? run.specs[tenant].deadlineCycles
                     : deadlineOverride;
    t.kernel = kernel;
    t.trip = trip;
    t.out = std::move(out);
    run.tracked.push_back(std::move(t));
    if (!fault.empty()) ++run.faultsArmed;
    return;
  }
  const StatusCode code = admitted.status().code();
  if (code != StatusCode::kResourceExhausted &&
      code != StatusCode::kDeadlineExceeded) {
    report(violations, run.seed, "admission",
           "unexpected submit status: " + admitted.status().toString());
  }
}

/// Per-wave invariants: conservation and the absence of in-flight work
/// after a drain, plus the epoch clock tracking completed drains.
void checkWave(const LaunchService& service, const SeedRun& run,
               std::vector<ChaosViolation>& violations) {
  for (const char* name : kTenantNames) {
    const TenantStats s = service.tenantStats(name);
    if (s.submitted !=
        s.accepted + (s.shed - s.evicted) + s.deadlineShed) {
      report(violations, run.seed, "conservation",
             std::string(name) + ": submitted=" + std::to_string(s.submitted) +
                 " accepted=" + std::to_string(s.accepted) +
                 " shed=" + std::to_string(s.shed) +
                 " evicted=" + std::to_string(s.evicted) +
                 " deadline_shed=" + std::to_string(s.deadlineShed));
    }
  }
  if (service.dispatchedOutstanding() != 0) {
    report(violations, run.seed, "drain-left-work",
           std::to_string(service.dispatchedOutstanding()) +
               " requests still dispatched after drain");
  }
  if (service.epoch() != run.drains) {
    report(violations, run.seed, "epoch-clock",
           "epoch=" + std::to_string(service.epoch()) + " after " +
               std::to_string(run.drains) + " drains");
  }
}

/// Campaign-end invariants: definiteness, no loss, no reorder, SLO
/// accounting. See chaos.h for the list.
void checkFinal(const LaunchService& service, const SeedRun& run,
                std::vector<ChaosViolation>& violations) {
  if (service.queuedRequests() != 0 || service.dispatchedOutstanding() != 0) {
    report(violations, run.seed, "not-empty",
           "queued=" + std::to_string(service.queuedRequests()) +
               " outstanding=" +
               std::to_string(service.dispatchedOutstanding()));
  }

  const std::vector<uint64_t> order = service.dispatchOrder();
  std::map<uint64_t, uint64_t> occurrences;
  std::map<uint64_t, size_t> firstAt;
  for (size_t pos = 0; pos < order.size(); ++pos) {
    if (++occurrences[order[pos]] == 1) firstAt[order[pos]] = pos;
  }

  // Per-request definiteness and loss checks.
  uint64_t doneWithDeadline[3] = {0, 0, 0};
  for (const Tracked& t : run.tracked) {
    const RequestOutcome o = service.outcome(t.id);
    const uint64_t dispatched = occurrences.count(t.id) ? occurrences[t.id] : 0;
    const std::string tag = "id " + std::to_string(t.id);
    switch (o.state) {
      case RequestState::kDone: {
        if (!o.status.isOk()) {
          report(violations, run.seed, "definiteness",
                 tag + " done with non-ok status " + o.status.toString());
        }
        if (dispatched != uint64_t{o.retries} + 1) {
          report(violations, run.seed, "no-loss",
                 tag + " done after " + std::to_string(dispatched) +
                     " dispatches but " + std::to_string(o.retries) +
                     " retries");
        }
        bool verified = true;
        for (uint64_t i = 0; i < t.trip; ++i) {
          if ((*t.out)[i] != mixKernelValue(t.kernel, i)) verified = false;
        }
        if (!verified) {
          report(violations, run.seed, "output-oracle",
                 tag + " buffer does not match kernel " +
                     mixKernelNames()[t.kernel]);
        }
        if (t.deadline != kNoDeadline) ++doneWithDeadline[t.tenant];
        break;
      }
      case RequestState::kShed:
        if (o.status.isOk()) {
          report(violations, run.seed, "definiteness",
                 tag + " shed with ok status");
        }
        if (dispatched != 0) {
          report(violations, run.seed, "no-loss",
                 tag + " shed but dispatched " + std::to_string(dispatched) +
                     " times");
        }
        break;
      case RequestState::kFailed:
        if (o.status.isOk()) {
          report(violations, run.seed, "definiteness",
                 tag + " failed with ok status");
        }
        if (dispatched > uint64_t{o.retries} + 1) {
          report(violations, run.seed, "no-loss",
                 tag + " failed after " + std::to_string(dispatched) +
                     " dispatches with " + std::to_string(o.retries) +
                     " retries");
        }
        break;
      default:
        report(violations, run.seed, "definiteness",
               tag + " not terminal: " +
                   std::string(requestStateName(o.state)));
        break;
    }
  }

  // No reorder: each tenant owns one priority class, so its admitted
  // requests must first-dispatch in admission (id) order — globally
  // and restricted to any one shard.
  for (uint32_t tenant = 0; tenant < 3; ++tenant) {
    std::vector<std::pair<size_t, uint64_t>> firsts;  // (position, id)
    for (const Tracked& t : run.tracked) {
      if (t.tenant != tenant || firstAt.count(t.id) == 0) continue;
      firsts.emplace_back(firstAt[t.id], t.id);
    }
    std::sort(firsts.begin(), firsts.end());
    std::map<uint32_t, uint64_t> lastIdByShard;
    uint64_t lastId = 0;
    bool haveLast = false;
    for (const auto& [pos, id] : firsts) {
      (void)pos;
      if (haveLast && id < lastId) {
        report(violations, run.seed, "no-reorder",
               std::string(kTenantNames[tenant]) + ": id " +
                   std::to_string(id) + " first-dispatched after id " +
                   std::to_string(lastId));
      }
      lastId = id;
      haveLast = true;
      const uint32_t shard = service.outcome(id).shard;
      const auto it = lastIdByShard.find(shard);
      if (it != lastIdByShard.end() && id < it->second) {
        report(violations, run.seed, "no-reorder",
               std::string(kTenantNames[tenant]) + " shard " +
                   std::to_string(shard) + ": id " + std::to_string(id) +
                   " first-dispatched after id " + std::to_string(it->second));
      }
      lastIdByShard[shard] = id;
    }
  }

  // SLO accounting against the harness's own bookkeeping.
  for (uint32_t tenant = 0; tenant < 3; ++tenant) {
    const TenantStats s = service.tenantStats(kTenantNames[tenant]);
    if (s.deadlineHit + s.deadlineMiss != doneWithDeadline[tenant]) {
      report(violations, run.seed, "slo-accounting",
             std::string(kTenantNames[tenant]) + ": hit+miss=" +
                 std::to_string(s.deadlineHit + s.deadlineMiss) +
                 " but completed-with-deadline=" +
                 std::to_string(doneWithDeadline[tenant]));
    }
    if (s.latency.count() != s.completed) {
      report(violations, run.seed, "slo-accounting",
             std::string(kTenantNames[tenant]) + ": latency count=" +
                 std::to_string(s.latency.count()) + " != completed=" +
                 std::to_string(s.completed));
    }
    if (s.completed + s.failed + s.evicted != s.accepted) {
      report(violations, run.seed, "conservation",
             std::string(kTenantNames[tenant]) + ": completed=" +
                 std::to_string(s.completed) + " failed=" +
                 std::to_string(s.failed) + " evicted=" +
                 std::to_string(s.evicted) + " accepted=" +
                 std::to_string(s.accepted));
    }
  }
}

void runSeed(const ChaosConfig& cfg, uint64_t seed, ChaosReport& out) {
  Rng root(seed);
  Rng tenantRng = root.fork(kTenantStream);
  Rng arrivalRng = root.fork(kArrivalStream);
  Rng faultRng = root.fork(kFaultStream);

  std::vector<gpusim::ArchSpec> archs(cfg.devices,
                                      gpusim::ArchSpec::testTiny());
  hostrt::DeviceManager mgr(std::move(archs));
  ServiceConfig config;
  config.shardCount = cfg.shards;
  // A hard bound two waves deep: congested waves overflow it (global
  // shedding + eviction) and brownout engages at the derived 3/4 mark.
  config.maxQueued = uint64_t{2} * cfg.requests;
  config.trace.enabled = cfg.trace;
  LaunchService service(mgr, config);

  SeedRun run;
  run.seed = seed;
  run.violationsBefore = out.violations.size();

  // Tenant plane, drawn from the tenants stream. Distinct priorities:
  // each tenant owns a priority class, which is what makes per-tenant
  // first-dispatch order assertable (within one class the service is
  // strict-arrival; across classes it weights by priority).
  run.specs[0].name = kTenantNames[0];
  run.specs[0].priority = 1;  // brownout sheds this class first
  run.specs[0].maxQueued = uint64_t{4} * cfg.requests;
  run.specs[0].deadlineCycles = uint64_t{1}
                                << (11 + tenantRng.nextBelow(6));
  run.specs[1].name = kTenantNames[1];
  run.specs[1].priority = 2;
  run.specs[1].maxQueued = uint64_t{4} * cfg.requests;
  run.specs[1].deadlineCycles =
      tenantRng.nextBelow(2) == 0
          ? kNoDeadline
          : uint64_t{1} << (12 + tenantRng.nextBelow(5));
  run.specs[2].name = kTenantNames[2];
  run.specs[2].priority = 3;
  run.specs[2].maxInFlight = 4;  // budget-limited: work outlives waves
  run.specs[2].maxQueued = uint64_t{4} * cfg.requests;
  run.specs[2].maxRetries = static_cast<uint32_t>(tenantRng.nextBelow(2));
  for (const TenantSpec& spec : run.specs) {
    const Status st = service.registerTenant(spec);
    if (!st.isOk()) {
      report(out.violations, seed, "setup", st.toString());
      return;
    }
  }

  // Unique discriminator for every armed fault spec, so the injector's
  // canonical-spec dedup never swallows a cell (block= is ignored at
  // fire time for the device-lost kinds; count= values above 1 only
  // widen an arm budget a single carrier request cannot exhaust).
  uint32_t ordinal = 0;

  const auto drawArrival = [&](Rng& rng, bool allowFault) {
    const uint32_t tenant = static_cast<uint32_t>(rng.nextBelow(3));
    const size_t kernel = static_cast<size_t>(rng.nextBelow(3));
    // A coarse shape grid (3 x 3 x 2 fingerprints): bursts then carry
    // adjacent same-fingerprint requests, so same-kernel batching runs
    // under chaos too (a fine grid would never batch).
    const uint64_t trip = kTile * (8 + 8 * rng.nextBelow(3));  // 64/128/192
    const uint32_t simdlen = uint32_t{1} << rng.nextBelow(2);
    uint64_t deadline = kInheritDeadline;
    const uint64_t roll = rng.nextBelow(16);
    if (roll == 0) {
      deadline = 0;  // unmeetable: must shed DEADLINE_EXCEEDED
    } else if (roll == 1) {
      deadline = uint64_t{1} << (10 + rng.nextBelow(8));
    }
    std::string fault;
    if (allowFault && faultRng.nextBelow(8) == 0) {
      // Traps fail only their own launch (INTERNAL, no migration), so
      // they are safe inside a congested wave.
      fault = "trap:step=1:count=" + std::to_string(1000 + ++ordinal);
    }
    submitOne(service, run, out.violations, tenant, kernel, trip, simdlen,
              deadline, fault, cfg.workers);
  };

  for (uint32_t epoch = 0; epoch < cfg.epochs; ++epoch) {
    // Congested wave: a burst past the brownout mark (sometimes past
    // the hard bound), a pump, a trailing burst, a second pump, drain.
    const uint64_t burst = cfg.requests + arrivalRng.nextBelow(cfg.requests + 1);
    for (uint64_t j = 0; j < burst; ++j) drawArrival(arrivalRng, true);
    service.pump();
    const uint64_t trailing = arrivalRng.nextBelow(cfg.requests / 2 + 1);
    for (uint64_t j = 0; j < trailing; ++j) drawArrival(arrivalRng, true);
    service.pump();
    Status st = service.drain();
    ++run.drains;
    if (!st.isOk()) {
      report(out.violations, seed, "drain", st.toString());
    }
    checkWave(service, run, out.violations);

    // Device-lost storms ride in single-request waves so each strands
    // exactly its carrier — which is what keeps every per-tenant stat
    // (migrations, trips, backoff) shard-invariant.
    const uint64_t storms = faultRng.nextBelow(3);
    for (uint64_t k = 0; k < storms; ++k) {
      const uint32_t tenant = static_cast<uint32_t>(faultRng.nextBelow(3));
      const size_t kernel = static_cast<size_t>(faultRng.nextBelow(3));
      const uint64_t trip = kTile * (4 + faultRng.nextBelow(13));
      const char* kind = faultRng.nextBelow(2) == 0 ? "device_lost_pre"
                                                    : "device_lost_post";
      const std::string fault =
          std::string(kind) + ":count=1:block=" + std::to_string(++ordinal);
      submitOne(service, run, out.violations, tenant, kernel, trip,
                /*simdlen=*/1, kInheritDeadline, fault, cfg.workers);
      service.pump();
      st = service.drain();
      ++run.drains;
      if (!st.isOk()) {
        report(out.violations, seed, "drain", st.toString());
      }
      checkWave(service, run, out.violations);
    }
  }

  const Status done = service.runToCompletion();
  if (!done.isOk()) {
    report(out.violations, seed, "run-to-completion", done.toString());
  }
  checkFinal(service, run, out.violations);
  if (cfg.plantViolation && seed == cfg.seedLo) {
    report(out.violations, seed, "planted",
           "synthetic violation planted for flight-dump drills");
  }
  // Invariant violation: the flight-recorder drop. The campaign keeps
  // going (later seeds still run); the dump captures the first broken
  // seed's window because that is the one a post-mortem starts from.
  if (cfg.trace && !cfg.flightPath.empty() &&
      out.violations.size() > run.violationsBefore &&
      run.violationsBefore == 0) {
    if (ServiceTracer* tracer = service.tracer()) {
      tracer->onFailureTrigger("invariant_violation");
      (void)tracer->dumpFlightToFile(cfg.flightPath, "invariant_violation");
    }
  }

  // Per-seed report lines, built exclusively from shard-invariant
  // surfaces (tenant stats and the harness's own draws).
  TenantStats totals;
  std::ostringstream text;
  for (const char* name : kTenantNames) {
    const TenantStats s = service.tenantStats(name);
    totals.submitted += s.submitted;
    totals.accepted += s.accepted;
    totals.shed += s.shed;
    totals.evicted += s.evicted;
    totals.brownoutShed += s.brownoutShed;
    totals.deadlineShed += s.deadlineShed;
    totals.completed += s.completed;
    totals.failed += s.failed;
    totals.migrated += s.migrated;
    totals.deadlineHit += s.deadlineHit;
    totals.deadlineMiss += s.deadlineMiss;
    totals.retriesExhausted += s.retriesExhausted;
    totals.breakerTrips += s.breakerTrips;
  }
  const uint64_t seedViolations =
      out.violations.size() - run.violationsBefore;
  text << "seed=" << seed << " submitted=" << totals.submitted
       << " accepted=" << totals.accepted << " shed=" << totals.shed
       << " evicted=" << totals.evicted
       << " brownout_shed=" << totals.brownoutShed
       << " deadline_shed=" << totals.deadlineShed
       << " completed=" << totals.completed << " failed=" << totals.failed
       << " migrated=" << totals.migrated
       << " deadline_hit=" << totals.deadlineHit
       << " deadline_miss=" << totals.deadlineMiss
       << " retries_exhausted=" << totals.retriesExhausted
       << " breaker_trips=" << totals.breakerTrips
       << " faults_armed=" << run.faultsArmed
       << " violations=" << seedViolations << "\n";
  for (const char* name : kTenantNames) {
    text << "seed=" << seed << " tenant " << name << " "
         << service.tenantStats(name).toString() << "\n";
  }
  for (size_t v = run.violationsBefore; v < out.violations.size(); ++v) {
    text << "violation seed=" << seed << " " << out.violations[v].invariant
         << ": " << out.violations[v].detail << "\n";
  }
  out.text += text.str();
  out.submitted += totals.submitted;
  out.completed += totals.completed;
  out.failed += totals.failed;
  out.faultsArmed += run.faultsArmed;
  ++out.seeds;
}

}  // namespace

Result<ChaosReport> runChaosCampaign(const ChaosConfig& config) {
  if (config.devices == 0) {
    return Status::invalidArgument("chaos: devices must be >= 1");
  }
  if (config.workers == 0) {
    return Status::invalidArgument("chaos: workers must be >= 1");
  }
  if (config.seedHi < config.seedLo) {
    return Status::invalidArgument("chaos: seed range is empty");
  }
  if (config.requests == 0 || config.epochs == 0) {
    return Status::invalidArgument("chaos: epochs and requests must be >= 1");
  }
  ChaosReport out;
  out.text = "# simserve chaos campaign v1\n";
  for (uint64_t seed = config.seedLo; seed <= config.seedHi; ++seed) {
    runSeed(config, seed, out);
  }
  std::ostringstream footer;
  footer << "campaign seeds=" << out.seeds << " submitted=" << out.submitted
         << " completed=" << out.completed << " failed=" << out.failed
         << " faults_armed=" << out.faultsArmed
         << " violations=" << out.violations.size() << "\n";
  out.text += footer.str();
  return out;
}

}  // namespace simtomp::simserve
