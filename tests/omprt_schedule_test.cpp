// Tests for worksharing schedules (static cyclic/chunked, dynamic) and
// the team-level reduction.
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "omprt/runtime.h"
#include "omprt/target.h"

namespace simtomp::omprt {
namespace {

using gpusim::ArchSpec;
using gpusim::Counter;
using gpusim::Device;

TargetConfig spmdConfig(uint32_t threads, uint32_t teams = 1) {
  TargetConfig config;
  config.teamsMode = ExecMode::kSPMD;
  config.numTeams = teams;
  config.threadsPerTeam = threads;
  return config;
}

struct SchedProbe {
  std::vector<std::atomic<int>> hits;
  std::vector<std::atomic<int>> owner;  // which group ran each iv
  explicit SchedProbe(size_t n) : hits(n), owner(n) {}
};

void schedBody(OmpContext& ctx, uint64_t iv, void** args) {
  auto* probe = static_cast<SchedProbe*>(args[0]);
  probe->hits[iv]++;
  probe->owner[iv].store(static_cast<int>(ctx.threadNum()));
  ctx.gpu().work(1);
}

struct SchedRegionArgs {
  SchedProbe* probe;
  uint64_t trip;
  ScheduleClause schedule;
};

void schedRegion(OmpContext& ctx, void** args) {
  auto* ra = static_cast<SchedRegionArgs*>(args[0]);
  void* body_args[] = {ra->probe};
  rt::workshareForScheduled(ctx, ra->trip, &schedBody, body_args,
                            ra->schedule);
}

class ScheduleMatrix
    : public ::testing::TestWithParam<std::tuple<ForSchedule, uint32_t>> {};

TEST_P(ScheduleMatrix, EveryIterationRunsOnce) {
  const auto [kind, group] = GetParam();
  Device dev(ArchSpec::testTiny());
  SchedProbe probe(97);
  SchedRegionArgs ra{&probe, 97, {kind, 3}};
  void* args[] = {&ra};
  auto stats = launchTarget(
      dev, spmdConfig(64), [&](OmpContext& ctx) {
        rt::parallel(ctx, &schedRegion, args, 1, {ExecMode::kSPMD, group});
      });
  ASSERT_TRUE(stats.isOk()) << stats.status().toString();
  for (size_t iv = 0; iv < 97; ++iv) {
    // SPMD: every lane of the owning group runs the iteration.
    EXPECT_EQ(probe.hits[iv].load(), static_cast<int>(group)) << iv;
  }
}

INSTANTIATE_TEST_SUITE_P(
    KindsAndGroups, ScheduleMatrix,
    ::testing::Combine(::testing::Values(ForSchedule::kStaticCyclic,
                                         ForSchedule::kStaticChunked,
                                         ForSchedule::kDynamic),
                       ::testing::Values(1u, 4u, 16u)));

TEST(ScheduleTest, StaticChunkedIsContiguous) {
  Device dev(ArchSpec::testTiny());
  SchedProbe probe(64);
  SchedRegionArgs ra{&probe, 64, {ForSchedule::kStaticChunked, 0}};
  void* args[] = {&ra};
  auto stats = launchTarget(
      dev, spmdConfig(64), [&](OmpContext& ctx) {
        rt::parallel(ctx, &schedRegion, args, 1, {ExecMode::kSPMD, 16});
      });
  ASSERT_TRUE(stats.isOk());
  // 4 groups, chunk 16: iv / 16 == owning group.
  for (size_t iv = 0; iv < 64; ++iv) {
    EXPECT_EQ(probe.owner[iv].load(), static_cast<int>(iv / 16)) << iv;
  }
}

TEST(ScheduleTest, StaticCyclicInterleaves) {
  Device dev(ArchSpec::testTiny());
  SchedProbe probe(64);
  SchedRegionArgs ra{&probe, 64, {ForSchedule::kStaticCyclic, 0}};
  void* args[] = {&ra};
  auto stats = launchTarget(
      dev, spmdConfig(64), [&](OmpContext& ctx) {
        rt::parallel(ctx, &schedRegion, args, 1, {ExecMode::kSPMD, 16});
      });
  ASSERT_TRUE(stats.isOk());
  for (size_t iv = 0; iv < 64; ++iv) {
    EXPECT_EQ(probe.owner[iv].load(), static_cast<int>(iv % 4)) << iv;
  }
}

TEST(ScheduleTest, DynamicUsesAtomicGrabs) {
  Device dev(ArchSpec::testTiny());
  SchedProbe probe(80);
  SchedRegionArgs ra{&probe, 80, {ForSchedule::kDynamic, 4}};
  void* args[] = {&ra};
  auto stats = launchTarget(
      dev, spmdConfig(64), [&](OmpContext& ctx) {
        rt::parallel(ctx, &schedRegion, args, 1, {ExecMode::kSPMD, 8});
      });
  ASSERT_TRUE(stats.isOk());
  // 80 iterations in chunks of 4: at least 20 successful grabs, plus
  // one failing grab per group (8 groups) to observe exhaustion.
  EXPECT_GE(stats.value().counters.get(Counter::kAtomicRmw), 20u + 8u);
}

TEST(ScheduleTest, DynamicFallsBackInGenericParallel) {
  Device dev(ArchSpec::testTiny());
  SchedProbe probe(40);
  SchedRegionArgs ra{&probe, 40, {ForSchedule::kDynamic, 4}};
  void* args[] = {&ra};
  auto stats = launchTarget(
      dev, spmdConfig(64), [&](OmpContext& ctx) {
        rt::parallel(ctx, &schedRegion, args, 1, {ExecMode::kGeneric, 8});
      });
  ASSERT_TRUE(stats.isOk());
  // Fallback is static: no dynamic-counter atomics, still correct.
  EXPECT_EQ(stats.value().counters.get(Counter::kAtomicRmw), 0u);
  for (size_t iv = 0; iv < 40; ++iv) {
    EXPECT_EQ(probe.hits[iv].load(), 1);  // generic: leaders only
  }
}

TEST(ScheduleTest, DynamicFallsBackInGenericTeams) {
  Device dev(ArchSpec::testTiny());
  TargetConfig config;
  config.teamsMode = ExecMode::kGeneric;
  config.numTeams = 1;
  config.threadsPerTeam = 64;
  SchedProbe probe(40);
  SchedRegionArgs ra{&probe, 40, {ForSchedule::kDynamic, 4}};
  auto stats = launchTarget(dev, config, [&](OmpContext& ctx) {
    void* args[] = {&ra};
    rt::parallel(ctx, &schedRegion, args, 1, {ExecMode::kSPMD, 8});
  });
  ASSERT_TRUE(stats.isOk());
  EXPECT_EQ(stats.value().counters.get(Counter::kAtomicRmw), 0u);
  for (size_t iv = 0; iv < 40; ++iv) {
    EXPECT_EQ(probe.hits[iv].load(), 8);  // SPMD region: all group lanes
  }
}

TEST(ScheduleTest, BackToBackDynamicLoopsReinitialize) {
  Device dev(ArchSpec::testTiny());
  SchedProbe probe_a(32);
  SchedProbe probe_b(32);
  auto region = +[](OmpContext& ctx, void** args) {
    auto* pa = static_cast<SchedProbe*>(args[0]);
    auto* pb = static_cast<SchedProbe*>(args[1]);
    const ScheduleClause dyn{ForSchedule::kDynamic, 2};
    void* a_args[] = {pa};
    rt::workshareForScheduled(ctx, 32, &schedBody, a_args, dyn);
    void* b_args[] = {pb};
    rt::workshareForScheduled(ctx, 32, &schedBody, b_args, dyn);
  };
  void* args[] = {&probe_a, &probe_b};
  auto stats = launchTarget(
      dev, spmdConfig(32), [&](OmpContext& ctx) {
        rt::parallel(ctx, region, args, 2, {ExecMode::kSPMD, 4});
      });
  ASSERT_TRUE(stats.isOk());
  for (size_t iv = 0; iv < 32; ++iv) {
    EXPECT_EQ(probe_a.hits[iv].load(), 4);
    EXPECT_EQ(probe_b.hits[iv].load(), 4);
  }
}

TEST(ScheduleTest, EmptyTripAllSchedules) {
  Device dev(ArchSpec::testTiny());
  for (ForSchedule kind : {ForSchedule::kStaticCyclic,
                           ForSchedule::kStaticChunked,
                           ForSchedule::kDynamic}) {
    SchedProbe probe(1);
    SchedRegionArgs ra{&probe, 0, {kind, 2}};
    void* args[] = {&ra};
    auto stats = launchTarget(
        dev, spmdConfig(32), [&](OmpContext& ctx) {
          rt::parallel(ctx, &schedRegion, args, 1, {ExecMode::kSPMD, 8});
        });
    ASSERT_TRUE(stats.isOk());
    EXPECT_EQ(probe.hits[0].load(), 0);
  }
}

// ---------------- teamReduceAdd ----------------

struct TeamReduceArgs {
  double result = 0.0;
};

void teamReduceRegion(OmpContext& ctx, void** args) {
  auto* ra = static_cast<TeamReduceArgs*>(args[0]);
  // Each group contributes its leader's group index + 1.
  const double mine = static_cast<double>(ctx.threadNum() + 1);
  const double total = rt::teamReduceAdd(ctx, mine);
  if (ctx.gpu().threadId() == 0) ra->result = total;
}

class TeamReduceProperty : public ::testing::TestWithParam<uint32_t> {};

TEST_P(TeamReduceProperty, SumsAllGroups) {
  const uint32_t group = GetParam();
  Device dev(ArchSpec::testTiny());
  TeamReduceArgs ra;
  void* args[] = {&ra};
  auto stats = launchTarget(
      dev, spmdConfig(64), [&](OmpContext& ctx) {
        rt::parallel(ctx, &teamReduceRegion, args, 1,
                     {ExecMode::kSPMD, group});
      });
  ASSERT_TRUE(stats.isOk());
  const uint32_t n = 64 / group;
  EXPECT_DOUBLE_EQ(ra.result, static_cast<double>(n) * (n + 1) / 2.0);
}

INSTANTIATE_TEST_SUITE_P(GroupSizes, TeamReduceProperty,
                         ::testing::Values(1u, 2u, 8u, 32u));

TEST(TeamReduceTest, NonPowerOfTwoGroupCount) {
  // 96 threads, group 32 -> 3 groups (non-power-of-two tree).
  Device dev(ArchSpec::testTiny());
  TeamReduceArgs ra;
  void* args[] = {&ra};
  auto stats = launchTarget(
      dev, spmdConfig(96), [&](OmpContext& ctx) {
        rt::parallel(ctx, &teamReduceRegion, args, 1, {ExecMode::kSPMD, 32});
      });
  ASSERT_TRUE(stats.isOk());
  EXPECT_DOUBLE_EQ(ra.result, 1.0 + 2.0 + 3.0);
}

TEST(TeamReduceTest, RepeatedReductionsStayConsistent) {
  Device dev(ArchSpec::testTiny());
  std::vector<double> results(5, 0.0);
  auto region = +[](OmpContext& ctx, void** args) {
    auto* out = static_cast<std::vector<double>*>(args[0]);
    for (int round = 0; round < 5; ++round) {
      const double total = rt::teamReduceAdd(ctx, 1.0);
      if (ctx.gpu().threadId() == 0) (*out)[round] = total;
    }
  };
  void* args[] = {&results};
  auto stats = launchTarget(
      dev, spmdConfig(64), [&](OmpContext& ctx) {
        rt::parallel(ctx, region, args, 1, {ExecMode::kSPMD, 8});
      });
  ASSERT_TRUE(stats.isOk());
  for (double r : results) EXPECT_DOUBLE_EQ(r, 8.0);  // 8 groups x 1.0
}

}  // namespace
}  // namespace simtomp::omprt
