#include "simtune/tuner.h"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <sstream>

#include "gpusim/executor.h"
#include "simprof/metrics.h"

namespace simtomp::simtune {
namespace {

bool isPowerOfTwo(uint32_t v) { return v != 0 && (v & (v - 1)) == 0; }

/// Would the runtime accept this candidate verbatim (no clamping, no
/// silent degradation)? Anything else is a duplicate of some valid
/// candidate and only wastes trials.
bool candidateValid(const gpusim::ArchSpec& arch, const TuneCandidate& c) {
  if (c.numTeams == 0) return false;
  if (c.threadsPerTeam == 0 || c.threadsPerTeam % arch.warpSize != 0) {
    return false;
  }
  const uint32_t block_threads =
      c.threadsPerTeam +
      (c.teamsMode == omprt::ExecMode::kGeneric ? arch.warpSize : 0);
  if (block_threads > arch.maxThreadsPerBlock) return false;
  if (!isPowerOfTwo(c.simdlen) || c.simdlen > arch.warpSize ||
      c.simdlen > c.threadsPerTeam) {
    return false;
  }
  // Generic-SIMD needs warp-level barriers; without them the runtime
  // degrades the group to 1 (paper section 5.4.1), so simdlen > 1
  // candidates there duplicate the simdlen == 1 one.
  if (!arch.hasWarpLevelBarrier &&
      c.parallelMode == omprt::ExecMode::kGeneric && c.simdlen > 1) {
    return false;
  }
  return true;
}

/// Copy a candidate into the auto fields of a TargetConfig (explicit
/// fields win — same rule as applyShape, so trial launches see exactly
/// the configuration a later cache application would produce).
void applyCandidate(const TuneCandidate& c, omprt::TargetConfig& config) {
  if (config.teamsModeAuto) {
    config.teamsMode = c.teamsMode;
    config.teamsModeAuto = false;
  }
  if (config.parallelModeAuto) {
    config.parallelMode = c.parallelMode;
    config.parallelModeAuto = false;
  }
  if (config.numTeams == 0) config.numTeams = c.numTeams;
  if (config.threadsPerTeam == 0) config.threadsPerTeam = c.threadsPerTeam;
  if (config.simdlen == 0) config.simdlen = c.simdlen;
  if (config.scheduleChunk == 0) config.scheduleChunk = c.scheduleChunk;
}

TunedShape shapeFromCandidate(const TuneCandidate& c, uint64_t cycles,
                              uint32_t trials) {
  TunedShape shape;
  shape.teamsMode = c.teamsMode;
  shape.parallelMode = c.parallelMode;
  shape.numTeams = c.numTeams;
  shape.threadsPerTeam = c.threadsPerTeam;
  shape.simdlen = c.simdlen;
  shape.scheduleChunk = c.scheduleChunk;
  shape.cycles = cycles;
  shape.trials = trials;
  return shape;
}

constexpr uint64_t kFailedTrial = UINT64_MAX;

}  // namespace

std::string_view tuneModeName(TuneMode mode) {
  switch (mode) {
    case TuneMode::kAuto: return "auto";
    case TuneMode::kOff: return "off";
    case TuneMode::kCache: return "cache";
    case TuneMode::kTune: return "tune";
  }
  return "?";
}

std::string_view tuneStrategyName(TuneStrategy strategy) {
  return strategy == TuneStrategy::kExhaustive ? "exhaustive" : "hillclimb";
}

TuneResolution resolveTuneMode(TuneMode requested) {
  TuneResolution res;
  if (requested != TuneMode::kAuto) {
    res.effective = requested;
    res.source = "explicit";
    return res;
  }
  const char* env = std::getenv("SIMTOMP_TUNE");
  if (env == nullptr) return res;  // default off
  res.envValue = env;
  res.source = "SIMTOMP_TUNE";
  const std::string_view v = res.envValue;
  if (v == "1" || v == "on" || v == "cache") {
    res.effective = TuneMode::kCache;
  } else if (v == "2" || v == "tune" || v == "trial") {
    res.effective = TuneMode::kTune;
  } else {
    res.effective = TuneMode::kOff;  // "0", "off", or unrecognized
  }
  return res;
}

std::string TuneCandidate::toString() const {
  std::ostringstream os;
  os << "teams=" << omprt::execModeName(teamsMode) << " parallel="
     << omprt::execModeName(parallelMode) << " numTeams=" << numTeams
     << " threadsPerTeam=" << threadsPerTeam << " simdlen=" << simdlen
     << " chunk=" << scheduleChunk;
  return os.str();
}

TuneAxes TuneAxes::defaults(const gpusim::ArchSpec& arch) {
  TuneAxes axes;
  axes.teamsModes = {omprt::ExecMode::kSPMD, omprt::ExecMode::kGeneric};
  axes.parallelModes = {omprt::ExecMode::kSPMD, omprt::ExecMode::kGeneric};
  axes.numTeams = {std::max(arch.numSMs / 2, 1u), arch.numSMs,
                   arch.numSMs * 2};
  std::sort(axes.numTeams.begin(), axes.numTeams.end());
  axes.numTeams.erase(
      std::unique(axes.numTeams.begin(), axes.numTeams.end()),
      axes.numTeams.end());
  for (uint32_t threads = arch.warpSize;
       threads <= std::min(256u, arch.maxThreadsPerBlock);
       threads *= 2) {
    axes.threadsPerTeam.push_back(threads);
  }
  for (uint32_t len = 1; len <= arch.warpSize; len *= 2) {
    axes.simdlens.push_back(len);
  }
  axes.scheduleChunks = {0};
  return axes;
}

std::vector<TuneCandidate> TuneAxes::enumerate(
    const gpusim::ArchSpec& arch) const {
  std::vector<TuneCandidate> out;
  for (const omprt::ExecMode teams : teamsModes) {
    for (const omprt::ExecMode par : parallelModes) {
      for (const uint32_t nt : numTeams) {
        for (const uint32_t tpt : threadsPerTeam) {
          for (const uint32_t len : simdlens) {
            for (const uint64_t chunk : scheduleChunks) {
              const TuneCandidate c{teams, par, nt, tpt, len, chunk};
              if (candidateValid(arch, c)) out.push_back(c);
            }
          }
        }
      }
    }
  }
  return out;
}

void applyShape(const TunedShape& shape, omprt::TargetConfig& config) {
  if (config.teamsModeAuto) {
    config.teamsMode = shape.teamsMode;
    config.teamsModeAuto = false;
  }
  if (config.parallelModeAuto) {
    config.parallelMode = shape.parallelMode;
    config.parallelModeAuto = false;
  }
  if (config.numTeams == 0) config.numTeams = shape.numTeams;
  if (config.threadsPerTeam == 0) config.threadsPerTeam = shape.threadsPerTeam;
  if (config.simdlen == 0) config.simdlen = shape.simdlen;
  if (config.scheduleChunk == 0) config.scheduleChunk = shape.scheduleChunk;
}

Tuner::Tuner(std::shared_ptr<TuneCache> cache) : cache_(std::move(cache)) {
  SIMTOMP_CHECK(cache_ != nullptr, "Tuner requires a cache");
}

Tuner::Tuner() : cache_(std::make_shared<TuneCache>(resolveCachePath(""))) {
  // A malformed cache file behaves like a cold cache (tuning rewrites
  // it); only genuinely unreadable content is silently dropped here.
  (void)cache_->load();
}

Result<TuneOutcome> Tuner::tune(const std::string& kernel,
                                const gpusim::ArchSpec& arch,
                                const gpusim::CostModel& cost,
                                const TuneAxes& axes, const TrialFn& trial,
                                const TuneRequest& request) {
  const TuneKey key = makeTuneKey(kernel, arch, cost, request.tripCount);
  if (!request.skipCache) {
    if (const auto hit = cache_->lookup(key)) {
      ++cache_hits_;
      simprof::MetricsRegistry::global().add(
          simprof::metric::kTuneCacheHitsTotal);
      TuneOutcome outcome;
      outcome.key = key;
      outcome.shape = *hit;
      outcome.fromCache = true;
      return outcome;
    }
  }
  ++cache_misses_;
  simprof::MetricsRegistry::global().add(
      simprof::metric::kTuneCacheMissesTotal);
  Result<TuneOutcome> result = search(key, arch, cost, axes, trial, request);
  if (!result.isOk()) return result;
  cache_->insert(key, result.value().shape);
  const Status saved = cache_->save();
  if (!saved.isOk()) return saved;
  return result;
}

Result<TuneOutcome> Tuner::search(const TuneKey& key,
                                  const gpusim::ArchSpec& arch,
                                  const gpusim::CostModel& cost,
                                  const TuneAxes& axes, const TrialFn& trial,
                                  const TuneRequest& request) {
  const std::vector<TuneCandidate> all = axes.enumerate(arch);
  if (all.empty()) {
    return Status::invalidArgument(
        "tuning axes enumerate to an empty launch space");
  }
  const uint32_t workers = gpusim::resolveHostWorkers(request.hostWorkers);
  uint32_t budget =
      request.maxTrials == 0 ? UINT32_MAX : request.maxTrials;

  // Memo of evaluated candidates (keyed by their canonical string):
  // hill-climb revisits coordinates, and repeats must be free both for
  // the budget and for determinism.
  std::map<std::string, uint64_t> memo;
  std::string first_error;
  TuneOutcome outcome;
  outcome.key = key;

  // Evaluate a batch of candidates concurrently (indexed slots keep
  // results deterministic for any worker count) and memoize.
  const auto evaluateBatch = [&](const std::vector<TuneCandidate>& batch) {
    std::vector<uint64_t> cycles(batch.size(), kFailedTrial);
    std::vector<std::string> errors(batch.size());
    gpusim::BlockExecutor::global().parallelFor(
        static_cast<uint32_t>(batch.size()), workers, [&](uint32_t i) {
          gpusim::Device scratch(arch, cost, request.scratchMemBytes);
          const Result<gpusim::KernelStats> r =
              trial(scratch, batch[i], request.check);
          if (r.isOk()) {
            cycles[i] = r.value().cycles;
          } else {
            errors[i] = r.status().toString();
          }
        });
    trial_launches_ += batch.size();
    simprof::MetricsRegistry::global().add(
        simprof::metric::kTuneTrialsTotal, batch.size());
    outcome.trialsRun += static_cast<uint32_t>(batch.size());
    budget -= static_cast<uint32_t>(batch.size());
    for (size_t i = 0; i < batch.size(); ++i) {
      memo[batch[i].toString()] = cycles[i];
      if (cycles[i] != kFailedTrial) {
        outcome.evaluated.emplace_back(batch[i], cycles[i]);
      } else if (first_error.empty()) {
        first_error = errors[i];
      }
    }
  };

  const auto cyclesOf = [&](const TuneCandidate& c) {
    const auto it = memo.find(c.toString());
    return it == memo.end() ? kFailedTrial : it->second;
  };

  if (request.strategy == TuneStrategy::kExhaustive) {
    std::vector<TuneCandidate> batch = all;
    if (batch.size() > budget) batch.resize(budget);
    evaluateBatch(batch);
    TuneCandidate best = batch.front();
    uint64_t best_cycles = kFailedTrial;
    for (const TuneCandidate& c : batch) {
      const uint64_t cy = cyclesOf(c);
      if (cy < best_cycles) {  // strict: ties keep enumeration order
        best_cycles = cy;
        best = c;
      }
    }
    if (best_cycles == kFailedTrial) {
      return Status::internal("every tuning trial failed: " + first_error);
    }
    outcome.shape = shapeFromCandidate(best, best_cycles, outcome.trialsRun);
    return outcome;
  }

  // Hill-climb: multi-start coordinate descent with memoization. The
  // two mode axes change the *structure* of the kernel (which spmv
  // variant runs, whether SIMD workers exist at all), so a numeric axis
  // can be dead in one mode and decisive in another — e.g. simdlen has
  // no effect on a 2-level generic-teams launch, and a descent started
  // there would flat-line at simdlen 1 and never revisit SPMD. One
  // descent therefore runs per (teamsMode, parallelMode) pair, starting
  // at the numeric point nearest the static heuristics (one team per
  // SM, 128 threads, simdlen 1), sweeping one numeric axis at a time
  // until a full pass makes no move or the shared trial budget runs
  // out. Deterministic: fixed start and sweep order, ties keep the
  // current coordinate or the lower axis index.
  const auto nearest = [](const std::vector<uint32_t>& axis, uint32_t want) {
    uint32_t best = axis.front();
    for (const uint32_t v : axis) {
      const uint64_t d = v > want ? v - want : want - v;
      const uint64_t bd = best > want ? best - want : want - best;
      if (d < bd) best = v;
    }
    return best;
  };
  std::vector<TuneCandidate> starts;
  for (const omprt::ExecMode teams : axes.teamsModes) {
    for (const omprt::ExecMode par : axes.parallelModes) {
      TuneCandidate start;
      start.teamsMode = teams;
      start.parallelMode = par;
      start.numTeams = nearest(axes.numTeams, arch.numSMs);
      start.threadsPerTeam = nearest(axes.threadsPerTeam, 128);
      start.simdlen = nearest(axes.simdlens, 1);
      start.scheduleChunk = axes.scheduleChunks.front();
      if (!candidateValid(arch, start)) {
        // Fall back to the first enumerated candidate of this mode
        // pair; a pair with no valid candidate contributes no start.
        const auto it = std::find_if(
            all.begin(), all.end(), [&](const TuneCandidate& c) {
              return c.teamsMode == teams && c.parallelMode == par;
            });
        if (it == all.end()) continue;
        start = *it;
      }
      starts.push_back(start);
    }
  }

  // One mutator per numeric axis, in the sweep order (modes are fixed
  // within a descent — mode coverage comes from the multi-start).
  using Mutator = std::function<std::vector<TuneCandidate>(
      const TuneCandidate&)>;
  const std::vector<Mutator> sweeps = {
      [&](const TuneCandidate& c) {
        std::vector<TuneCandidate> v;
        for (const uint32_t nt : axes.numTeams) {
          TuneCandidate n = c;
          n.numTeams = nt;
          v.push_back(n);
        }
        return v;
      },
      [&](const TuneCandidate& c) {
        std::vector<TuneCandidate> v;
        for (const uint32_t tpt : axes.threadsPerTeam) {
          TuneCandidate n = c;
          n.threadsPerTeam = tpt;
          v.push_back(n);
        }
        return v;
      },
      [&](const TuneCandidate& c) {
        std::vector<TuneCandidate> v;
        for (const uint32_t len : axes.simdlens) {
          TuneCandidate n = c;
          n.simdlen = len;
          v.push_back(n);
        }
        return v;
      },
      [&](const TuneCandidate& c) {
        std::vector<TuneCandidate> v;
        for (const uint64_t chunk : axes.scheduleChunks) {
          TuneCandidate n = c;
          n.scheduleChunk = chunk;
          v.push_back(n);
        }
        return v;
      },
  };

  for (TuneCandidate current : starts) {
    if (budget == 0) break;
    bool moved = true;
    while (moved && budget > 0) {
      moved = false;
      for (const Mutator& sweep : sweeps) {
        if (budget == 0) break;
        std::vector<TuneCandidate> variants;
        for (TuneCandidate& v : sweep(current)) {
          if (candidateValid(arch, v)) variants.push_back(v);
        }
        std::vector<TuneCandidate> fresh;
        for (const TuneCandidate& v : variants) {
          if (memo.find(v.toString()) == memo.end() &&
              fresh.size() < budget) {
            fresh.push_back(v);
          }
        }
        if (!fresh.empty()) evaluateBatch(fresh);
        uint64_t best_cycles = cyclesOf(current);
        TuneCandidate best = current;
        for (const TuneCandidate& v : variants) {
          const uint64_t cy = cyclesOf(v);
          if (cy < best_cycles) {  // strict: ties keep the current point
            best_cycles = cy;
            best = v;
          }
        }
        if (!(best == current)) {
          current = best;
          moved = true;
        }
      }
    }
  }

  // Winner: best memoized candidate in enumeration order (descent can
  // step past better points when the budget cuts a sweep short).
  uint64_t best_cycles = kFailedTrial;
  TuneCandidate best = all.front();
  for (const TuneCandidate& c : all) {
    const uint64_t cy = cyclesOf(c);
    if (cy < best_cycles) {
      best_cycles = cy;
      best = c;
    }
  }
  if (best_cycles == kFailedTrial) {
    return Status::internal("every tuning trial failed: " + first_error);
  }
  outcome.shape = shapeFromCandidate(best, best_cycles, outcome.trialsRun);
  return outcome;
}

Result<TuneOutcome> Tuner::tuneTarget(gpusim::Device& device,
                                      omprt::TargetConfig& config,
                                      const omprt::TargetRegionFn& region,
                                      const TuneRequest& request) {
  if (config.tuneKey.empty()) {
    return Status::invalidArgument("tuneTarget requires a tune key");
  }
  // Pin every explicit axis so the search space is exactly the auto
  // subspace of this launch.
  TuneAxes axes = TuneAxes::defaults(device.arch());
  if (!config.teamsModeAuto) axes.teamsModes = {config.teamsMode};
  if (!config.parallelModeAuto) axes.parallelModes = {config.parallelMode};
  if (config.numTeams != 0) axes.numTeams = {config.numTeams};
  if (config.threadsPerTeam != 0) axes.threadsPerTeam = {config.threadsPerTeam};
  if (config.simdlen != 0) axes.simdlens = {config.simdlen};
  axes.scheduleChunks = {config.scheduleChunk};

  const omprt::TargetConfig base = config;
  const TrialFn trial = [&device, &base, &region](
                            gpusim::Device& /*scratch*/,
                            const TuneCandidate& candidate,
                            const simcheck::CheckConfig& check) {
    omprt::TargetConfig tc = base;
    tc.check = check;
    applyCandidate(candidate, tc);
    return omprt::launchTarget(device, tc, region);
  };

  // Trials run on the caller's device, which forbids overlap: force a
  // serial fan-out and shrink the (unused) scratch arenas.
  TuneRequest serial = request;
  serial.hostWorkers = 1;
  serial.scratchMemBytes = 1024 * 1024;
  if (serial.tripCount == 0) serial.tripCount = config.tripCount;

  Result<TuneOutcome> result =
      tune(config.tuneKey, device.arch(), device.costModel(), axes, trial,
           serial);
  if (!result.isOk()) return result;
  applyShape(result.value().shape, config);
  return result;
}

bool Tuner::resolveConfig(const gpusim::ArchSpec& arch,
                          const gpusim::CostModel& cost,
                          omprt::TargetConfig& config) {
  if (config.tuneKey.empty() || !omprt::hasAutoLaunchFields(config)) {
    return false;
  }
  const TuneKey key =
      makeTuneKey(config.tuneKey, arch, cost, config.tripCount);
  const auto hit = cache_->lookup(key);
  if (!hit) {
    ++cache_misses_;
    simprof::MetricsRegistry::global().add(
        simprof::metric::kTuneCacheMissesTotal);
    return false;
  }
  ++cache_hits_;
  simprof::MetricsRegistry::global().add(
      simprof::metric::kTuneCacheHitsTotal);
  applyShape(*hit, config);
  return true;
}

}  // namespace simtomp::simtune
