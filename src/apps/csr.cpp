#include "apps/csr.h"

#include <algorithm>

#include "support/status.h"

namespace simtomp::apps {

CsrMatrix generateCsr(const CsrGenConfig& config) {
  SIMTOMP_CHECK(config.numRows > 0 && config.numCols > 0,
                "CSR generator needs a non-empty shape");
  SIMTOMP_CHECK(config.maxRowLength >= 1 &&
                    config.maxRowLength <= config.numCols,
                "maxRowLength must be in [1, numCols]");
  Rng rng(config.seed);
  CsrMatrix A;
  A.numRows = config.numRows;
  A.numCols = config.numCols;
  A.rowPtr.resize(config.numRows + 1, 0);

  // Draw skewed row lengths first so rowPtr is exact.
  std::vector<uint32_t> lengths(config.numRows);
  for (uint32_t r = 0; r < config.numRows; ++r) {
    lengths[r] = rng.nextSkewed(config.meanRowLength, config.maxRowLength);
  }
  for (uint32_t r = 0; r < config.numRows; ++r) {
    A.rowPtr[r + 1] = A.rowPtr[r] + lengths[r];
  }
  const uint32_t nnz = A.rowPtr.back();
  A.colIdx.reserve(nnz);
  A.values.reserve(nnz);

  std::vector<uint32_t> cols;
  for (uint32_t r = 0; r < config.numRows; ++r) {
    // Sample distinct, sorted column indices for the row.
    cols.clear();
    while (cols.size() < lengths[r]) {
      const auto c = static_cast<uint32_t>(rng.nextBelow(config.numCols));
      if (std::find(cols.begin(), cols.end(), c) == cols.end()) {
        cols.push_back(c);
      }
    }
    std::sort(cols.begin(), cols.end());
    for (uint32_t c : cols) {
      A.colIdx.push_back(c);
      A.values.push_back(rng.nextDouble(-1.0, 1.0));
    }
  }
  return A;
}

std::vector<double> spmvReference(const CsrMatrix& A,
                                  std::span<const double> x) {
  std::vector<double> y(A.numRows, 0.0);
  for (uint32_t r = 0; r < A.numRows; ++r) {
    double sum = 0.0;
    for (uint32_t k = A.rowPtr[r]; k < A.rowPtr[r + 1]; ++k) {
      sum += A.values[k] * x[A.colIdx[k]];
    }
    y[r] = sum;
  }
  return y;
}

std::vector<double> denseVector(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (double& value : v) value = rng.nextDouble(-1.0, 1.0);
  return v;
}

}  // namespace simtomp::apps
