// The variable sharing space (paper section 5.3.1).
//
// A static slab of GPU shared memory through which main threads pass
// argument pointers to their workers in generic mode. Originally only
// the single team main thread wrote to it (1,024 bytes in LLVM); the
// paper grows it to 2,048 bytes and divides it evenly among the SIMD
// groups of the current parallel region. A group whose argument list
// does not fit its slice falls back to a global-memory allocation that
// is released at the end of the parallel region.
//
// Layout: a small reserved region at the front holds the *team* main
// thread's parallel-region arguments; the remainder is divided evenly
// among SIMD groups, each slice addressed by pure arithmetic so SPMD
// threads need no coordination to find their group's slice.
//
// All stores/loads through this class charge shared- or global-memory
// costs on the calling thread, so the cost of generic-mode sharing (and
// of overflowing the space) is visible in kernel statistics.
#pragma once

#include <cstdint>
#include <vector>

#include "gpusim/memory.h"
#include "gpusim/thread.h"
#include "support/status.h"

namespace simtomp::omprt {

class SharingSpace {
 public:
  /// Bytes reserved at the front for team-level parallel args.
  static constexpr uint32_t kTeamReserveBytes = 128;

  /// Carve `bytes` out of the block's shared memory; `maxGroups` bounds
  /// the number of simultaneously live SIMD groups (= worker threads,
  /// since group size >= 1). If the scratchpad cannot fit the request
  /// the space degenerates to size 0 and everything overflows to global
  /// memory.
  SharingSpace(gpusim::SharedMemory& shared, gpusim::DeviceMemory& global,
               uint32_t bytes, uint32_t maxGroups);
  ~SharingSpace();

  SharingSpace(const SharingSpace&) = delete;
  SharingSpace& operator=(const SharingSpace&) = delete;

  [[nodiscard]] uint32_t sizeBytes() const { return bytes_; }

  /// Pointer-slot capacity of one group's slice when the region is
  /// divided among `numGroups` groups.
  [[nodiscard]] uint32_t slotsPerGroup(uint32_t numGroups) const;

  // ---- SIMD-group argument staging (generic-SIMD mode) ----

  /// Begin sharing `numArgs` pointers for `group` of `numGroups`.
  /// Returns the staging area (shared slice or global overflow block)
  /// and records it so workers can fetch it.
  void** beginSharing(gpusim::ThreadCtx& t, uint32_t group,
                      uint32_t numGroups, uint32_t numArgs);
  /// Store one argument pointer (charges shared or global store).
  void storeArg(gpusim::ThreadCtx& t, uint32_t group, void** area,
                uint32_t index, void* value);
  /// Worker-side: fetch the staging area published for `group`.
  void** fetchArgs(gpusim::ThreadCtx& t, uint32_t group);
  /// End sharing; frees the overflow block if one was made.
  void endSharing(gpusim::ThreadCtx& t, uint32_t group);
  [[nodiscard]] bool overflowed(uint32_t group) const;

  // ---- Team-level argument staging (generic teams mode) ----

  void** beginTeamSharing(gpusim::ThreadCtx& t, uint32_t numArgs);
  void** fetchTeamArgs(gpusim::ThreadCtx& t);
  void endTeamSharing(gpusim::ThreadCtx& t);

  /// Total overflow events since construction (for stats/tests).
  [[nodiscard]] uint64_t overflowCount() const { return overflow_count_; }

 private:
  struct Slot {
    void** area = nullptr;
    gpusim::DevPtr overflow = gpusim::kNullDevPtr;
  };

  void** begin(gpusim::ThreadCtx& t, Slot& slot, void** slice,
               uint32_t capacity, uint32_t numArgs);
  void end(gpusim::ThreadCtx& t, Slot& slot);

  gpusim::DeviceMemory* global_;
  std::byte* base_ = nullptr;
  uint32_t bytes_ = 0;
  uint32_t team_reserve_ = 0;
  std::vector<Slot> groups_;
  Slot team_slot_;
  uint64_t overflow_count_ = 0;
};

}  // namespace simtomp::omprt
