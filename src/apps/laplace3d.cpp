#include "apps/laplace3d.h"

#include "dsl/dsl.h"
#include "support/rng.h"

namespace simtomp::apps {

namespace {

using gpusim::GlobalSpan;
using omprt::OmpContext;

inline uint64_t idx3(const Laplace3dWorkload& w, uint64_t i, uint64_t j,
                     uint64_t k) {
  return (i * w.ny + j) * w.nz + k;
}

/// Six-point average at an interior point: 6 loads + 1 store.
inline void laplacePoint(OmpContext& ctx, const GlobalSpan<double>& u,
                         const GlobalSpan<double>& out,
                         const Laplace3dWorkload& w, uint64_t i, uint64_t j,
                         uint64_t k) {
  gpusim::ThreadCtx& t = ctx.gpu();
  const double sum = u.get(t, idx3(w, i - 1, j, k)) +
                     u.get(t, idx3(w, i + 1, j, k)) +
                     u.get(t, idx3(w, i, j - 1, k)) +
                     u.get(t, idx3(w, i, j + 1, k)) +
                     u.get(t, idx3(w, i, j, k - 1)) +
                     u.get(t, idx3(w, i, j, k + 1));
  t.fma(3);  // 5 adds + 1 multiply
  out.set(t, idx3(w, i, j, k), sum * (1.0 / 6.0));
}

}  // namespace

Laplace3dWorkload generateLaplace3d(uint32_t n, uint64_t seed) {
  return generateLaplace3d(n, n, n, seed);
}

Laplace3dWorkload generateLaplace3d(uint32_t nx, uint32_t ny, uint32_t nz,
                                    uint64_t seed) {
  Rng rng(seed);
  Laplace3dWorkload w;
  w.nx = nx;
  w.ny = ny;
  w.nz = nz;
  w.u.resize(static_cast<size_t>(nx) * ny * nz);
  for (double& v : w.u) v = rng.nextDouble(0.0, 100.0);
  return w;
}

std::vector<double> laplace3dReference(const Laplace3dWorkload& w) {
  std::vector<double> out = w.u;  // boundary keeps old values
  for (uint64_t i = 1; i + 1 < w.nx; ++i) {
    for (uint64_t j = 1; j + 1 < w.ny; ++j) {
      for (uint64_t k = 1; k + 1 < w.nz; ++k) {
        out[idx3(w, i, j, k)] =
            (w.u[idx3(w, i - 1, j, k)] + w.u[idx3(w, i + 1, j, k)] +
             w.u[idx3(w, i, j - 1, k)] + w.u[idx3(w, i, j + 1, k)] +
             w.u[idx3(w, i, j, k - 1)] + w.u[idx3(w, i, j, k + 1)]) *
            (1.0 / 6.0);
      }
    }
  }
  return out;
}

Result<AppRunResult> runLaplace3d(gpusim::Device& device,
                                  const Laplace3dWorkload& w,
                                  const Laplace3dOptions& options) {
  auto dev_u = toDevice<double>(device, w.u);
  if (!dev_u.isOk()) return dev_u.status();
  // Output starts as a copy so boundary values carry over.
  auto dev_out = toDevice<double>(device, w.u);
  if (!dev_out.isOk()) return dev_out.status();
  const GlobalSpan<double> u = dev_u.value();
  const GlobalSpan<double> out = dev_out.value();
  const uint64_t planes_i = w.nx - 2;
  const uint64_t planes_j = w.ny - 2;
  const uint64_t inner = w.nz - 2;

  dsl::LaunchSpec spec;
  spec.numTeams = options.numTeams;
  spec.threadsPerTeam = options.threadsPerTeam;
  spec.teamsMode = omprt::ExecMode::kSPMD;  // all Fig. 10 teams are SPMD
  spec.parallelMode = options.mode == SimdMode::kGenericSimd
                          ? omprt::ExecMode::kGeneric
                          : omprt::ExecMode::kSPMD;
  spec.simdlen = options.mode == SimdMode::kNoSimd ? 1 : options.simdlen;

  // Collapsed (i,j) plane across teams+threads; k line is the simd level.
  auto run = dsl::targetTeamsDistributeParallelFor(
      device, spec, planes_i * planes_j,
      [&](OmpContext& ctx, uint64_t plane) {
        const uint64_t i = plane / planes_j + 1;
        const uint64_t j = plane % planes_j + 1;
        ctx.gpu().work(3);  // index arithmetic
        if (options.mode == SimdMode::kNoSimd) {
          for (uint64_t kk = 0; kk < inner; ++kk) {
            ctx.gpu().work(2);
            laplacePoint(ctx, u, out, w, i, j, kk + 1);
          }
        } else {
          dsl::simd(ctx, inner,
                    [&u, &out, &w, i, j](OmpContext& c, uint64_t kk) {
                      laplacePoint(c, u, out, w, i, j, kk + 1);
                    });
        }
      });

  AppRunResult result;
  if (run.isOk()) {
    result.stats = run.value();
    const std::vector<double> got = toHost(out);
    const std::vector<double> reference = laplace3dReference(w);
    result.maxError = maxAbsDiff(got, reference);
    result.verified = result.maxError < 1e-12;
  }
  (void)device.freeArray(u.data());
  (void)device.freeArray(out.data());
  if (!run.isOk()) return run.status();
  return result;
}

}  // namespace simtomp::apps
