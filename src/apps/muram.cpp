#include "apps/muram.h"

#include "dsl/dsl.h"
#include "support/rng.h"

namespace simtomp::apps {

namespace {

using gpusim::GlobalSpan;
using omprt::OmpContext;

dsl::LaunchSpec specFor(const MuramOptions& options) {
  dsl::LaunchSpec spec;
  spec.numTeams = options.numTeams;
  spec.threadsPerTeam = options.threadsPerTeam;
  spec.teamsMode = omprt::ExecMode::kSPMD;
  spec.parallelMode = options.mode == SimdMode::kGenericSimd
                          ? omprt::ExecMode::kGeneric
                          : omprt::ExecMode::kSPMD;
  spec.simdlen = options.mode == SimdMode::kNoSimd ? 1 : options.simdlen;
  return spec;
}

/// Run one "collapsed (i,j), k-line inner" kernel in the requested
/// SIMD mode; `point(ctx, i, j, k)` handles one element.
template <typename Point>
Result<gpusim::KernelStats> launchPlaneKernel(gpusim::Device& device,
                                              const MuramWorkload& w,
                                              const MuramOptions& options,
                                              uint64_t kTrip, Point point) {
  const dsl::LaunchSpec spec = specFor(options);
  const uint64_t planes = static_cast<uint64_t>(w.nx) * w.ny;
  return dsl::targetTeamsDistributeParallelFor(
      device, spec, planes, [&](OmpContext& ctx, uint64_t plane) {
        const uint64_t i = plane / w.ny;
        const uint64_t j = plane % w.ny;
        ctx.gpu().work(3);
        if (options.mode == SimdMode::kNoSimd) {
          for (uint64_t k = 0; k < kTrip; ++k) {
            ctx.gpu().work(2);
            point(ctx, i, j, k);
          }
        } else {
          dsl::simd(ctx, kTrip, [&point, i, j](OmpContext& c, uint64_t k) {
            point(c, i, j, k);
          });
        }
      });
}

template <typename Kernel>
Result<AppRunResult> runWithVerify(gpusim::Device& device,
                                   const MuramWorkload& w, size_t outSize,
                                   const std::vector<double>& reference,
                                   Kernel kernel) {
  auto dev_in = toDevice<double>(device, w.input);
  if (!dev_in.isOk()) return dev_in.status();
  auto dev_out = zeroDevice<double>(device, outSize);
  if (!dev_out.isOk()) return dev_out.status();
  const GlobalSpan<double> in = dev_in.value();
  const GlobalSpan<double> out = dev_out.value();

  auto run = kernel(in, out);

  AppRunResult result;
  if (run.isOk()) {
    result.stats = run.value();
    const std::vector<double> got = toHost(out);
    result.maxError = maxAbsDiff(got, reference);
    result.verified = result.maxError < 1e-12;
  }
  (void)device.freeArray(in.data());
  (void)device.freeArray(out.data());
  if (!run.isOk()) return run.status();
  return result;
}

}  // namespace

MuramWorkload generateMuram(uint32_t nx, uint32_t ny, uint32_t nz,
                            uint64_t seed) {
  Rng rng(seed);
  MuramWorkload w;
  w.nx = nx;
  w.ny = ny;
  w.nz = nz;
  w.input.resize(static_cast<size_t>(nx) * ny * nz);
  for (double& v : w.input) v = rng.nextDouble(-10.0, 10.0);
  return w;
}

std::vector<double> muramTransposeReference(const MuramWorkload& w) {
  std::vector<double> out(w.input.size(), 0.0);
  for (uint64_t i = 0; i < w.nx; ++i) {
    for (uint64_t j = 0; j < w.ny; ++j) {
      for (uint64_t k = 0; k < w.nz; ++k) {
        out[(k * w.ny + j) * w.nx + i] = w.input[(i * w.ny + j) * w.nz + k];
      }
    }
  }
  return out;
}

std::vector<double> muramInterpolReference(const MuramWorkload& w) {
  std::vector<double> out(
      static_cast<size_t>(w.nx) * w.ny * (w.nz - 1), 0.0);
  for (uint64_t i = 0; i < w.nx; ++i) {
    for (uint64_t j = 0; j < w.ny; ++j) {
      for (uint64_t k = 0; k + 1 < w.nz; ++k) {
        const double a = w.input[(i * w.ny + j) * w.nz + k];
        const double b = w.input[(i * w.ny + j) * w.nz + k + 1];
        out[(i * w.ny + j) * (w.nz - 1) + k] = 0.5 * (a + b);
      }
    }
  }
  return out;
}

Result<AppRunResult> runMuramTranspose(gpusim::Device& device,
                                       const MuramWorkload& w,
                                       const MuramOptions& options) {
  const std::vector<double> reference = muramTransposeReference(w);
  return runWithVerify(
      device, w, w.input.size(), reference,
      [&](const GlobalSpan<double>& in, const GlobalSpan<double>& out) {
        return launchPlaneKernel(
            device, w, options, w.nz,
            [&in, &out, &w](OmpContext& ctx, uint64_t i, uint64_t j,
                            uint64_t k) {
              gpusim::ThreadCtx& t = ctx.gpu();
              const double v = in.get(t, (i * w.ny + j) * w.nz + k);
              t.work(4);  // index remap arithmetic
              out.set(t, (k * w.ny + j) * w.nx + i, v);
            });
      });
}

Result<AppRunResult> runMuramInterpol(gpusim::Device& device,
                                      const MuramWorkload& w,
                                      const MuramOptions& options) {
  const std::vector<double> reference = muramInterpolReference(w);
  return runWithVerify(
      device, w, static_cast<size_t>(w.nx) * w.ny * (w.nz - 1), reference,
      [&](const GlobalSpan<double>& in, const GlobalSpan<double>& out) {
        return launchPlaneKernel(
            device, w, options, w.nz - 1,
            [&in, &out, &w](OmpContext& ctx, uint64_t i, uint64_t j,
                            uint64_t k) {
              gpusim::ThreadCtx& t = ctx.gpu();
              const double a = in.get(t, (i * w.ny + j) * w.nz + k);
              const double b = in.get(t, (i * w.ny + j) * w.nz + k + 1);
              t.fma(1);
              out.set(t, (i * w.ny + j) * (w.nz - 1) + k, 0.5 * (a + b));
            });
      });
}

}  // namespace simtomp::apps
