// Quickstart: three levels of parallelism on the simulated GPU.
//
// The OpenMP source this corresponds to:
//
//   #pragma omp target teams distribute parallel for map(to:in) map(from:out)
//   for (int row = 0; row < kRows; ++row) {
//     double scale = 0.5 * in[row * kInner];     // sequential preamble
//     #pragma omp simd simdlen(8)
//     for (int k = 0; k < kInner; ++k)
//       out[row * kInner + k] = scale * in[row * kInner + k];
//   }
//
// Build & run:  ./examples/quickstart
#include <cstdio>
#include <vector>

#include "dsl/dsl.h"
#include "hostrt/data_env.h"

using namespace simtomp;

int main() {
  constexpr uint64_t kRows = 1024;
  constexpr uint64_t kInner = 24;

  // Host data.
  std::vector<double> in(kRows * kInner);
  std::vector<double> out(kRows * kInner, 0.0);
  for (size_t i = 0; i < in.size(); ++i) in[i] = static_cast<double>(i % 97);

  // A simulated A100-like device and its data environment.
  gpusim::Device device;
  hostrt::DataEnvironment env(device);

  // #pragma omp target data map(to: in) map(from: out)
  hostrt::MappedSpan<double> in_map(env, std::span<double>(in),
                                    hostrt::MapType::kTo);
  hostrt::MappedSpan<double> out_map(env, std::span<double>(out),
                                     hostrt::MapType::kFrom);
  if (!in_map.status().isOk() || !out_map.status().isOk()) {
    std::fprintf(stderr, "mapping failed\n");
    return 1;
  }
  auto dev_in = in_map.device();
  auto dev_out = out_map.device();

  // Launch configuration: SPMD teams, generic-SIMD parallel regions
  // with groups of 8 lanes (the paper's sweet spot for small loops).
  dsl::LaunchSpec spec;
  spec.numTeams = 64;
  spec.threadsPerTeam = 128;
  spec.teamsMode = omprt::ExecMode::kSPMD;
  spec.parallelMode = omprt::ExecMode::kGeneric;
  spec.simdlen = 8;

  auto stats = dsl::targetTeamsDistributeParallelFor(
      device, spec, kRows, [&](dsl::OmpContext& ctx, uint64_t row) {
        // Sequential preamble per row (runs on the SIMD group leader).
        const double scale = 0.5 * dev_in.get(ctx.gpu(), row * kInner);
        ctx.gpu().fma();
        // The simd level: lanes of the group share the inner loop.
        dsl::simd(ctx, kInner, [&, scale, row](dsl::OmpContext& c,
                                               uint64_t k) {
          const double v = dev_in.get(c.gpu(), row * kInner + k);
          c.gpu().fma();
          dev_out.set(c.gpu(), row * kInner + k, scale * v);
        });
      });

  if (!stats.isOk()) {
    std::fprintf(stderr, "launch failed: %s\n",
                 stats.status().toString().c_str());
    return 1;
  }

  // MappedSpan destructors copy `out` back at scope exit; force it now
  // by updating explicitly so we can verify below.
  (void)env.updateFrom(out.data());

  // Verify against the host computation.
  for (uint64_t row = 0; row < kRows; ++row) {
    const double scale = 0.5 * in[row * kInner];
    for (uint64_t k = 0; k < kInner; ++k) {
      const double expect = scale * in[row * kInner + k];
      if (out[row * kInner + k] != expect) {
        std::fprintf(stderr, "mismatch at row %llu k %llu\n",
                     static_cast<unsigned long long>(row),
                     static_cast<unsigned long long>(k));
        return 1;
      }
    }
  }

  std::printf("quickstart OK\n");
  std::printf("  simulated kernel cycles : %llu\n",
              static_cast<unsigned long long>(stats.value().cycles));
  std::printf("  simd loops executed     : %llu\n",
              static_cast<unsigned long long>(
                  stats.value().counters.get(gpusim::Counter::kSimdLoop)));
  std::printf("  bytes host->device      : %llu\n",
              static_cast<unsigned long long>(env.stats().bytesToDevice));
  return 0;
}
