// spmv_tuning: the paper's developer guidance (section 6.5) as a tool.
//
// "For choosing a simdlen, or SIMD group size, our best results were
//  when we focused on reducing thread waste ... It is likely best to
//  experiment with the different options to see which fits the
//  specific scenario best."
//
// This example generates CSR matrices with different sparsity profiles,
// sweeps every SIMD group size (plus the 2-level baseline), and prints
// the winner for each — exactly the experiment an application developer
// would run before committing to a simdlen clause.
#include <cstdio>
#include <vector>

#include "apps/csr.h"
#include "apps/sparse_matvec.h"
#include "gpusim/device.h"

using namespace simtomp;

namespace {

struct Profile {
  const char* name;
  uint32_t meanRowLength;
  uint32_t maxRowLength;
};

uint64_t measure(const apps::CsrMatrix& A, const apps::SpmvOptions& options) {
  gpusim::Device device;
  auto result = apps::runSpmv(device, A, options);
  if (!result.isOk() || !result.value().verified) {
    std::fprintf(stderr, "spmv run failed\n");
    std::exit(1);
  }
  return result.value().stats.cycles;
}

}  // namespace

int main() {
  const Profile profiles[] = {
      {"very sparse (mean 4)", 4, 16},
      {"paper-like (mean 8)", 8, 64},
      {"denser rows (mean 24)", 24, 96},
  };

  for (const Profile& profile : profiles) {
    apps::CsrGenConfig config;
    config.numRows = 2048;
    config.numCols = 2048;
    config.meanRowLength = profile.meanRowLength;
    config.maxRowLength = profile.maxRowLength;
    const apps::CsrMatrix A = apps::generateCsr(config);

    std::printf("\nmatrix: %s, %u rows, %u nnz\n", profile.name, A.numRows,
                A.nnz());

    apps::SpmvOptions baseline;
    baseline.variant = apps::SpmvVariant::kTwoLevel;
    baseline.numTeams = 128;
    baseline.threadsPerTeam = 32;
    const uint64_t base_cycles = measure(A, baseline);
    std::printf("  %-24s %12llu cycles\n", "2-level baseline",
                static_cast<unsigned long long>(base_cycles));

    uint32_t best_group = 0;
    uint64_t best_cycles = ~uint64_t{0};
    for (uint32_t group : {2u, 4u, 8u, 16u, 32u}) {
      apps::SpmvOptions options;
      options.variant = apps::SpmvVariant::kThreeLevelAtomic;
      options.numTeams = 64;
      options.threadsPerTeam = 256;
      options.simdlen = group;
      const uint64_t cycles = measure(A, options);
      std::printf("  simd group %-13u %12llu cycles  (%.2fx)\n", group,
                  static_cast<unsigned long long>(cycles),
                  static_cast<double>(base_cycles) /
                      static_cast<double>(cycles));
      if (cycles < best_cycles) {
        best_cycles = cycles;
        best_group = group;
      }
    }
    std::printf("  -> recommended simdlen(%u), %.2fx over 2-level\n",
                best_group,
                static_cast<double>(base_cycles) /
                    static_cast<double>(best_cycles));
  }
  return 0;
}
