// simfuzz generator: seed -> FuzzProgram, deterministically.
//
// A weighted grammar over every launch axis the runtime exposes.
// generate(seed) is a pure function — no wall clock, no global state,
// every draw derives from support/rng.h streams forked off the seed —
// so the same seed yields byte-identical programs on every platform,
// worker count and rerun. Trip counts mix uniform draws with a pool of
// adversarial values (primes, warp-size neighbours, simdlen-sized and
// sub-simdlen trips) that real-runtime experience reports single out.
#pragma once

#include <cstdint>

#include "simfuzz/program.h"

namespace simtomp::simfuzz {

class Generator {
 public:
  /// `salt` shifts the whole program stream (campaign namespacing);
  /// the default stream is the one CI and the regression corpus pin.
  explicit Generator(uint64_t salt = 0) : salt_(salt) {}

  /// The program for `seed`: pure, total, already normalize()d.
  [[nodiscard]] FuzzProgram generate(uint64_t seed) const;

 private:
  uint64_t salt_;
};

}  // namespace simtomp::simfuzz
