// Variable globalization (paper section 4.3).
//
// When a simd loop executes in generic mode, variables referenced by
// the outlined body must be visible to the SIMD worker threads, so
// thread-local allocations are promoted ("globalized") to shared
// memory — or to global memory when the scratchpad is full — and
// released at the end of the enclosing parallel region.
//
// Globalizer is the RAII embodiment: construct it at region entry,
// globalize() each local that escapes into a simd payload, and let the
// destructor release the promoted allocations, charging the copy
// traffic as it goes. Each group leader owns its own Globalizer;
// allocations are individually freed because the lifetimes of
// different groups' promotions interleave arbitrarily.
#pragma once

#include <cstring>
#include <vector>

#include "gpusim/memory.h"
#include "omprt/context.h"

namespace simtomp::loopir {

class Globalizer {
 public:
  explicit Globalizer(omprt::OmpContext& ctx) : ctx_(&ctx) {}
  ~Globalizer();

  Globalizer(const Globalizer&) = delete;
  Globalizer& operator=(const Globalizer&) = delete;

  /// Copy `bytes` starting at `src` into shared memory (global memory
  /// on overflow) and return the promoted address. Charges one shared
  /// (or global) store per 8 bytes copied, plus the local loads.
  void* globalizeBytes(const void* src, size_t bytes, size_t align);

  /// Typed convenience: promote one trivially copyable local.
  template <typename T>
  T* globalize(const T& local) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "globalized variables must be trivially copyable");
    return static_cast<T*>(globalizeBytes(&local, sizeof(T), alignof(T)));
  }

  /// Copy a promoted value back into a local (e.g. lastprivate-style
  /// read-back after the loop). Charges the load traffic.
  template <typename T>
  void readBack(T& local, const T* promoted) {
    chargeCopy(sizeof(T), /*store=*/false);
    std::memcpy(&local, promoted, sizeof(T));
  }

  [[nodiscard]] size_t promotedCount() const {
    return shared_blocks_.size() + overflow_blocks_.size();
  }
  [[nodiscard]] size_t overflowCount() const {
    return overflow_blocks_.size();
  }

 private:
  void chargeCopy(size_t bytes, bool store);

  omprt::OmpContext* ctx_;
  std::vector<std::byte*> shared_blocks_;
  std::vector<gpusim::DevPtr> overflow_blocks_;
};

}  // namespace simtomp::loopir
