// Randomized (seeded) coverage property: for arbitrary combinations of
// execution modes, team/thread shapes, group sizes, schedules and trip
// counts, every loop iteration must execute exactly once per owning
// unit, and the kernel must terminate cleanly.
//
// Launch shapes come from the simfuzz generator — the same weighted
// grammar the differential fuzzer explores — so there is one source of
// truth for "random but legal" programs; this test then checks the
// coverage property directly with host-side hit counters instead of
// simfuzz's output oracles.
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "dsl/dsl.h"
#include "simfuzz/generator.h"

namespace simtomp::dsl {
namespace {

using gpusim::ArchSpec;
using gpusim::Device;

class FuzzCoverage : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzCoverage, RandomConfigurationsCoverAllIterations) {
  const simfuzz::Generator gen;
  Device dev(ArchSpec::testTiny());

  for (int round = 0; round < 6; ++round) {
    // Six distinct programs per instantiated seed; the stride keeps the
    // per-round sub-seeds disjoint across the instantiations below.
    const simfuzz::FuzzProgram p =
        gen.generate(GetParam() * 1000 + static_cast<uint64_t>(round));
    const LaunchSpec spec = p.launchSpec();
    const uint64_t outer_trip = p.outerTrip;
    const uint64_t inner_trip = p.innerTrip;

    std::vector<std::atomic<int>> outer_hits(outer_trip);
    std::vector<std::atomic<int>> inner_hits(outer_trip * (inner_trip + 1));

    auto stats = targetTeamsDistributeParallelFor(
        dev, spec, outer_trip, [&](OmpContext& ctx, uint64_t row) {
          if (ctx.simdGroupId() == 0) outer_hits[row]++;
          simd(ctx, inner_trip,
               [&inner_hits, row, inner_trip](OmpContext&, uint64_t k) {
                 inner_hits[row * (inner_trip + 1) + k]++;
               });
        });
    ASSERT_TRUE(stats.isOk())
        << stats.status().toString() << " seed=" << GetParam()
        << " round=" << round << " program=" << p.serialize();

    for (uint64_t row = 0; row < outer_trip; ++row) {
      EXPECT_EQ(outer_hits[row].load(), 1)
          << "row " << row << " program=" << p.serialize();
      for (uint64_t k = 0; k < inner_trip; ++k) {
        EXPECT_EQ(inner_hits[row * (inner_trip + 1) + k].load(), 1)
            << "row " << row << " k " << k << " program=" << p.serialize();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzCoverage,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u, 66u, 77u,
                                           88u));

class FuzzSchedules : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzSchedules, RandomScheduleConfigurationsCover) {
  const simfuzz::Generator gen;
  Device dev(ArchSpec::testTiny());

  for (int round = 0; round < 6; ++round) {
    simfuzz::FuzzProgram p =
        gen.generate(GetParam() * 1000 + static_cast<uint64_t>(round) + 500);
    // Single-team override: this property isolates the worksharing
    // schedule, so the distribute split must not mask holes. Forcing
    // the sched construct keeps normalize() from neutralizing the
    // drawn schedule clause.
    p.construct = simfuzz::Construct::kScheduledFor;
    p.numTeams = 1;
    p.normalize();
    const LaunchSpec spec = p.launchSpec();
    const uint64_t trip = p.outerTrip;

    std::vector<std::atomic<int>> hits(trip + 1);
    auto stats = target(dev, spec, [&](OmpContext& ctx) {
      parallelForSchedule(
          ctx, trip,
          [&hits](OmpContext& c, uint64_t iv) {
            if (c.simdGroupId() == 0) hits[iv]++;
          },
          omprt::ScheduleClause{p.schedKind, p.schedChunk},
          omprt::ParallelConfig{omprt::ExecMode::kSPMD, spec.simdlen});
    });
    ASSERT_TRUE(stats.isOk())
        << "seed=" << GetParam() << " program=" << p.serialize();
    for (uint64_t iv = 0; iv < trip; ++iv) {
      EXPECT_EQ(hits[iv].load(), 1)
          << "iv=" << iv << " program=" << p.serialize();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSchedules,
                         ::testing::Values(5u, 6u, 7u, 8u));

}  // namespace
}  // namespace simtomp::dsl
