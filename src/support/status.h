// Lightweight status / result types used across the library.
//
// The simulator and runtime prefer to surface configuration and usage
// errors as recoverable Status values; invariant violations inside the
// execution engine use SIMTOMP_CHECK (which aborts) because continuing
// after a broken scheduler invariant would corrupt simulation state.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <exception>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace simtomp {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kFailedPrecondition,
  kOutOfRange,
  kResourceExhausted,
  kUnimplemented,
  kInternal,
  kUnavailable,
  kDeadlineExceeded,
};

/// Human-readable name for a StatusCode.
std::string_view statusCodeName(StatusCode code);

/// A success-or-error value. Cheap to copy on success (empty message).
class Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status ok() { return {}; }
  static Status invalidArgument(std::string msg) {
    return {StatusCode::kInvalidArgument, std::move(msg)};
  }
  static Status failedPrecondition(std::string msg) {
    return {StatusCode::kFailedPrecondition, std::move(msg)};
  }
  static Status outOfRange(std::string msg) {
    return {StatusCode::kOutOfRange, std::move(msg)};
  }
  static Status resourceExhausted(std::string msg) {
    return {StatusCode::kResourceExhausted, std::move(msg)};
  }
  static Status unimplemented(std::string msg) {
    return {StatusCode::kUnimplemented, std::move(msg)};
  }
  static Status internal(std::string msg) {
    return {StatusCode::kInternal, std::move(msg)};
  }
  static Status unavailable(std::string msg) {
    return {StatusCode::kUnavailable, std::move(msg)};
  }
  static Status deadlineExceeded(std::string msg) {
    return {StatusCode::kDeadlineExceeded, std::move(msg)};
  }

  [[nodiscard]] bool isOk() const { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }
  [[nodiscard]] std::string toString() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Result<T>: either a value or a Status error.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Status status) : value_(std::move(status)) {}  // NOLINT

  [[nodiscard]] bool isOk() const {
    return std::holds_alternative<T>(value_);
  }
  [[nodiscard]] const T& value() const& { return std::get<T>(value_); }
  [[nodiscard]] T& value() & { return std::get<T>(value_); }
  [[nodiscard]] T&& value() && { return std::get<T>(std::move(value_)); }
  [[nodiscard]] const Status& status() const {
    static const Status kOk;
    if (isOk()) return kOk;
    return std::get<Status>(value_);
  }

 private:
  std::variant<T, Status> value_;
};

/// An exception carrying a Status across stack frames that cannot
/// return one — device fibers and the async helper thread. The launch
/// machinery catches it at the block boundary and lands the payload in
/// the block's outcome slot, so recoverable runtime conditions (e.g.
/// sharing-space exhaustion) become Status failures instead of aborts.
class StatusException : public std::exception {
 public:
  explicit StatusException(Status status) : status_(std::move(status)) {}

  [[nodiscard]] const Status& status() const { return status_; }
  [[nodiscard]] const char* what() const noexcept override {
    return status_.message().c_str();
  }

 private:
  Status status_;
};

[[noreturn]] void checkFailed(const char* file, int line, const char* expr,
                              const std::string& msg);

}  // namespace simtomp

/// Fatal invariant check. Aborts with location info when `cond` is false.
#define SIMTOMP_CHECK(cond, msg)                                   \
  do {                                                             \
    if (!(cond)) {                                                 \
      ::simtomp::checkFailed(__FILE__, __LINE__, #cond, (msg));    \
    }                                                              \
  } while (false)
