// simprof: hierarchical profiling for the simulated SIMD runtime.
//
// The paper's central questions (Figs. 9-10) are about *where cycles
// go* in the three-level hierarchy: state-machine polling vs. SIMD
// lockstep work vs. idle lanes. This subsystem attributes modeled
// cycles to a construct tree
//
//   kernel -> team -> parallel -> simd loop / workshare
//                      \-> barrier / state-poll / sharing phases
//
// and renders it as an nvprof-style table, a folded-stack (flamegraph)
// dump, or JSON. Profiling rides *alongside* the cost model: hooks
// observe the thread clocks, they never charge cycles, so KernelStats
// are bit-identical with profiling on or off, and per-thread trees are
// merged in (block, thread) order so every output is byte-identical
// for any SIMTOMP_HOST_WORKERS.
//
// Like simcheck/simfault, the subsystem deliberately sits *below*
// gpusim in the build: it depends only on simtomp_support and speaks
// raw counter ids (gpusim passes its Counter enum values through as
// uint32_t and supplies names only at print time), so gpusim can link
// it without a dependency cycle.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace simtomp::simprof {

/// Nodes of the construct tree, in nesting order.
enum class Construct : uint8_t {
  kKernel = 0,  ///< whole launch (root; inclusive == KernelStats.cycles)
  kTeam,        ///< one per-thread implicit frame, merged over the grid
  kParallel,    ///< parallel region (generic or SPMD)
  kSimdLoop,    ///< simd / simd-reduction loop (detail = group size)
  kWorkshare,   ///< for-worksharing loop
  kDistribute,  ///< distribute chunk loop
  kBarrier,     ///< warp/block barrier rendezvous + wait
  kStatePoll,   ///< team/simd state-machine poll phase
  kSharing,     ///< sharing-space argument staging
  kCritical,    ///< critical section (lock + body)
  kCount        // sentinel
};
inline constexpr size_t kNumConstructs = static_cast<size_t>(Construct::kCount);

[[nodiscard]] std::string_view constructName(Construct c);

/// How a launch should be profiled. Mirrors simcheck::CheckMode.
enum class ProfileMode : uint8_t {
  kAuto = 0,  ///< resolve from the SIMTOMP_PROF env var (default: off)
  kOff,       ///< no profiling, zero overhead (one null-pointer branch)
  kOn,        ///< build the construct tree into Device::lastProfile()
};

[[nodiscard]] std::string_view profileModeName(ProfileMode mode);

/// Per-launch profiling configuration; rides on gpusim::LaunchConfig
/// the same way hostWorkers / check do.
struct ProfileConfig {
  ProfileMode mode = ProfileMode::kAuto;
};

/// How a ProfileMode request resolved — kept so `simtomp_info` and CI
/// logs can show where the mode came from (mirrors CheckResolution).
struct ProfileResolution {
  ProfileMode effective = ProfileMode::kOff;  ///< never kAuto
  const char* source = "default";  ///< "explicit" | "SIMTOMP_PROF" | "default"
  std::string envValue;            ///< raw env text when consulted
};

/// Resolve `requested` against the SIMTOMP_PROF environment variable.
/// An explicit (non-auto) request always wins; kAuto consults the env
/// var afresh on every call: "1"/"on" -> on, anything else -> off.
[[nodiscard]] ProfileResolution resolveProfileMode(ProfileMode requested);

/// One node of the construct tree. All cycle fields of non-root nodes
/// are *thread-cycles*: per-(thread, visit) modeled-timeline spans,
/// summed over every thread that visited the node — additive, so the
/// exclusive share is well defined and barrier waiting is visible. The
/// root kernel node instead carries the launch-level cycle count
/// (KernelStats.cycles), set by LaunchProfile::finalize.
struct ProfileNode {
  Construct construct = Construct::kKernel;
  uint64_t detail = 0;  ///< simd group size for kSimdLoop, else 0
  uint64_t inclusiveCycles = 0;  ///< span including children
  uint64_t exclusiveCycles = 0;  ///< span minus child spans
  uint64_t busyCycles = 0;  ///< charged cycles while this node was current
  uint64_t visits = 0;
  /// Per-construct event counts, indexed by raw gpusim counter id;
  /// charges land on the node that was current (exclusive attribution).
  std::vector<uint64_t> counters;
  std::vector<ProfileNode> children;

  /// "simd_loop@8" for kSimdLoop with detail 8, else the plain name.
  [[nodiscard]] std::string label() const;

  ProfileNode* findOrCreateChild(Construct c, uint64_t detail,
                                 size_t numCounters);
  /// Accumulate `other` (same construct/detail) into this node,
  /// merging children recursively. Deterministic: children keep the
  /// first-seen order and callers merge in (block, thread) order.
  void mergeFrom(const ProfileNode& other);
  /// Sort children by (construct, detail) recursively so rendered
  /// output is byte-stable regardless of visit order.
  void sortChildren();
};

/// One raw construct span on a thread's modeled timeline, captured for
/// deep tracing (nested spans on the SM track).
struct RawSpan {
  Construct construct = Construct::kKernel;
  uint64_t detail = 0;
  uint64_t start = 0;
  uint64_t end = 0;
  uint32_t depth = 0;  ///< nesting depth below the implicit team frame
};

/// Per-thread profile state: a span stack plus a local construct tree.
/// Owned by a BlockProfiler; a thread enters its implicit team frame at
/// time 0 and finish() closes whatever is still open.
class ThreadProfile {
 public:
  ThreadProfile(size_t num_counters, bool capture_spans);

  void enter(Construct c, uint64_t detail, uint64_t now);
  void exit(uint64_t now);
  void onCharge(uint32_t counter_id, uint64_t cycles, uint64_t count);
  /// Close all open frames (including the team frame) at `final_time`.
  void finish(uint64_t final_time);

  [[nodiscard]] const ProfileNode& root() const { return root_; }
  [[nodiscard]] const std::vector<RawSpan>& spans() const { return spans_; }

  /// Raw spans beyond this many are dropped (host memory guard).
  static constexpr size_t kMaxSpans = 65536;

 private:
  struct Frame {
    ProfileNode* node = nullptr;
    uint64_t enterTime = 0;
    uint64_t childCycles = 0;
  };

  size_t num_counters_;
  bool capture_spans_;
  ProfileNode root_;
  std::vector<Frame> frames_;
  std::vector<RawSpan> spans_;
};

/// Per-block profiler: one ThreadProfile per device thread. Owned by
/// the launch's per-block outcome slot (like simcheck::BlockChecker)
/// so results survive into the deterministic block-order merge.
class BlockProfiler {
 public:
  BlockProfiler(uint32_t block_id, uint32_t num_threads, size_t num_counters,
                bool capture_spans);

  [[nodiscard]] uint32_t blockId() const { return block_id_; }
  [[nodiscard]] ThreadProfile& thread(uint32_t tid) { return threads_[tid]; }
  [[nodiscard]] const ThreadProfile& thread(uint32_t tid) const {
    return threads_[tid];
  }
  [[nodiscard]] uint32_t numThreads() const {
    return static_cast<uint32_t>(threads_.size());
  }

  /// The block's team tree: thread trees merged in thread order.
  [[nodiscard]] ProfileNode teamTree() const;
  /// Raw spans of thread 0 (the traced thread), for deep tracing.
  [[nodiscard]] const std::vector<RawSpan>& tracedSpans() const {
    return threads_[0].spans();
  }

 private:
  uint32_t block_id_;
  size_t num_counters_;
  std::vector<ThreadProfile> threads_;
};

/// Counter-id -> name callback, supplied at print time (the profiler
/// itself never sees gpusim's Counter enum).
using CounterNameFn = std::string_view (*)(uint32_t);

/// Rendering options for table()/writeJson(): counter names plus which
/// raw counter ids carry the SIMD lane-utilization pair.
struct RenderOptions {
  CounterNameFn counterName = nullptr;
  uint32_t laneRoundsCounter = 0xFFFFFFFFu;
  uint32_t idleLaneRoundsCounter = 0xFFFFFFFFu;
};

/// The merged result of one profiled launch, published by
/// Device::lastProfile() (also for failed launches, like
/// lastCheckReport). Root inclusive cycles equal KernelStats.cycles
/// exactly; descendants are in thread-cycles (see ProfileNode).
struct LaunchProfile {
  bool enabled = false;
  size_t numCounters = 0;
  uint64_t rootCycles = 0;
  ProfileNode root;

  /// Merge one block's team tree (call in block order).
  void mergeTeam(const ProfileNode& team);
  /// Pin the root to the launch cycle count and canonicalize child
  /// order for byte-stable output.
  void finalize(uint64_t cycles);

  /// nvprof-style per-construct table (indent = nesting).
  [[nodiscard]] std::string table(const RenderOptions& opts = {}) const;
  /// Folded-stack (flamegraph) lines "kernel;team;... <exclusive>",
  /// sorted lexicographically; zero-weight stacks are omitted.
  [[nodiscard]] std::string folded() const;
  /// Nested JSON (fixed key order, deterministic).
  void writeJson(std::ostream& out, const RenderOptions& opts = {}) const;
};

}  // namespace simtomp::simprof
