#include "simcheck/report.h"

#include <cstdlib>
#include <cstring>
#include <sstream>

namespace simtomp::simcheck {

std::string_view diagKindName(DiagKind kind) {
  switch (kind) {
    case DiagKind::kDataRace: return "data-race";
    case DiagKind::kCrossBlockRace: return "cross-block-race";
    case DiagKind::kBarrierDivergence: return "barrier-divergence";
    case DiagKind::kInconsistentMask: return "inconsistent-mask";
    case DiagKind::kSharingOutOfSlice: return "sharing-out-of-slice";
    case DiagKind::kSharingUnpublishedRead: return "sharing-unpublished-read";
    case DiagKind::kSharingOverflowLeak: return "sharing-overflow-leak";
    case DiagKind::kUninitSharedRead: return "uninit-shared-read";
  }
  return "unknown";
}

std::string_view checkModeName(CheckMode mode) {
  switch (mode) {
    case CheckMode::kAuto: return "auto";
    case CheckMode::kOff: return "off";
    case CheckMode::kReport: return "report";
    case CheckMode::kFatal: return "fatal";
  }
  return "unknown";
}

namespace {

std::string_view spaceName(MemSpace space) {
  switch (space) {
    case MemSpace::kNone: return "";
    case MemSpace::kShared: return "shared";
    case MemSpace::kGlobal: return "global";
    case MemSpace::kSynthetic: return "runtime-state";
  }
  return "";
}

}  // namespace

std::string Diagnostic::toString() const {
  std::ostringstream out;
  out << diagKindName(kind) << ": block " << blockId;
  if (threadId != kNoThread) {
    out << " thread " << threadId;
    if (otherThreadId != kNoThread) out << " vs thread " << otherThreadId;
  }
  if (space != MemSpace::kNone) {
    out << " @ " << spaceName(space) << "+0x" << std::hex << address
        << std::dec;
  }
  if (!detail.empty()) out << " (" << detail << ")";
  return out.str();
}

void CheckReport::add(Diagnostic diag) {
  counts[static_cast<size_t>(diag.kind)] += 1;
  if (diagnostics.size() < maxDiagnostics) {
    diagnostics.push_back(std::move(diag));
  }
}

void CheckReport::merge(const CheckReport& other) {
  for (size_t i = 0; i < kNumDiagKinds; ++i) counts[i] += other.counts[i];
  for (const Diagnostic& d : other.diagnostics) {
    if (diagnostics.size() >= maxDiagnostics) break;
    diagnostics.push_back(d);
  }
}

uint64_t CheckReport::total() const {
  uint64_t sum = 0;
  for (uint64_t c : counts) sum += c;
  return sum;
}

std::string CheckReport::summary() const {
  if (clean()) return "clean";
  std::ostringstream out;
  bool first = true;
  for (size_t i = 0; i < kNumDiagKinds; ++i) {
    if (counts[i] == 0) continue;
    if (!first) out << " ";
    first = false;
    out << diagKindName(static_cast<DiagKind>(i)) << "=" << counts[i];
  }
  return out.str();
}

std::string CheckReport::toString() const {
  std::ostringstream out;
  out << "simcheck: " << summary();
  if (total() > diagnostics.size()) {
    out << " (showing first " << diagnostics.size() << ")";
  }
  for (const Diagnostic& d : diagnostics) out << "\n  " << d.toString();
  return out.str();
}

CheckResolution resolveCheckMode(CheckMode requested) {
  CheckResolution r;
  if (requested != CheckMode::kAuto) {
    r.effective = requested;
    r.source = "explicit";
    return r;
  }
  const char* env = std::getenv("SIMTOMP_CHECK");
  if (env == nullptr) {
    r.effective = CheckMode::kOff;
    r.source = "default";
    return r;
  }
  r.envValue = env;
  r.source = "SIMTOMP_CHECK";
  if (std::strcmp(env, "1") == 0 || std::strcmp(env, "on") == 0 ||
      std::strcmp(env, "report") == 0) {
    r.effective = CheckMode::kReport;
  } else if (std::strcmp(env, "2") == 0 || std::strcmp(env, "fatal") == 0) {
    r.effective = CheckMode::kFatal;
  } else {
    // "0", "off", or anything unrecognized: checking stays off.
    r.effective = CheckMode::kOff;
  }
  return r;
}

}  // namespace simtomp::simcheck
