// Host-side parallel block execution engine.
//
// The execution-model contract (DESIGN.md §6) makes simulated thread
// blocks fully independent: each BlockEngine owns its fibers, shared
// memory and team state, and touches only global memory (whose
// allocator and atomics are thread-safe). BlockExecutor exploits that
// by dispatching independent block runs across a persistent pool of
// host worker threads — the same "many lightweight execution contexts
// hosted on a thread pool" design as LLVM's portable GPU runtime.
//
// Determinism guarantee: host workers only change *which OS thread*
// runs a block, never what the block computes or what it is charged.
// Device::launch collects per-block results into slots and merges them
// in block order after the join, so every reported simulated-cycle
// number (KernelStats, counters, trace timeline) is bit-identical for
// hostWorkers=1 and hostWorkers=N.
//
// Thread-confinement rule: a block's fibers are created, run and
// destroyed on one worker thread (the task body constructs the
// BlockEngine locally), enforced by FiberScheduler's owner-thread
// assertions. Fibers never migrate between host threads.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace simtomp::gpusim {

/// Resolve the effective host worker count for a launch: an explicit
/// `requested` > 0 wins, else the SIMTOMP_HOST_WORKERS environment
/// variable (re-read on every launch so tests can flip it), else
/// std::thread::hardware_concurrency(). Always at least 1.
uint32_t resolveHostWorkers(uint32_t requested);

/// Persistent worker pool for independent block (or device) tasks.
///
/// parallelFor() runs fn(0), ..., fn(count-1) with up to `workers`
/// host threads, the calling thread included; index claiming is
/// dynamic (one index at a time), so skewed block costs balance.
/// Multiple client threads may call parallelFor concurrently — e.g.
/// the per-device helper threads of a DeviceManager — and share the
/// same helpers; each call completes when all of its own indices have
/// finished. Helper threads are spawned lazily up to the largest
/// worker count ever requested (so SIMTOMP_HOST_WORKERS=8 gives real
/// 8-way interleaving even on smaller hosts) and live until process
/// exit.
class BlockExecutor {
 public:
  BlockExecutor() = default;
  ~BlockExecutor();

  BlockExecutor(const BlockExecutor&) = delete;
  BlockExecutor& operator=(const BlockExecutor&) = delete;

  /// The process-wide pool shared by every Device and DeviceManager.
  static BlockExecutor& global();

  /// Hard cap on pool helper threads (sanity bound for bad env values).
  static constexpr uint32_t kMaxHelpers = 64;

  /// Run fn over [0, count) with at most `workers` threads (caller
  /// included). `fn` must not throw and must not leak references to
  /// other indices' state; callers capture failures per index (see
  /// Device::launch's per-block outcome slots). Calls with
  /// workers <= 1, count <= 1, or from inside a pool worker (no
  /// nesting) run inline on the calling thread.
  void parallelFor(uint32_t count, uint32_t workers,
                   const std::function<void(uint32_t)>& fn);

  /// Helper threads currently spawned (grows on demand).
  [[nodiscard]] size_t helperCount() const;

 private:
  /// One in-flight parallelFor. Lives on the caller's stack; the pool
  /// only holds a pointer while the job is registered, and the caller
  /// deregisters it only after every helper has detached.
  struct Job {
    const std::function<void(uint32_t)>* fn = nullptr;
    uint32_t count = 0;
    uint32_t next = 0;        ///< next unclaimed index
    uint32_t done = 0;        ///< finished indices
    uint32_t maxHelpers = 0;  ///< worker budget minus the caller
    uint32_t helpers = 0;     ///< helpers currently attached
  };

  void helperLoop();
  /// Claim-and-run loop shared by the caller and helpers. Entered and
  /// exited with `lock` held; unlocks around each fn() call.
  void runJob(Job& job, std::unique_lock<std::mutex>& lock);
  [[nodiscard]] Job* claimableJobLocked();
  void ensureHelpersLocked(uint32_t desired);

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;  ///< wakes helpers when a job arrives
  std::condition_variable done_cv_;  ///< wakes callers as indices finish
  std::vector<std::thread> helpers_;
  std::vector<Job*> jobs_;
  bool shutdown_ = false;
};

}  // namespace simtomp::gpusim
