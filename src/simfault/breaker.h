// simfault: a deterministic per-device circuit breaker.
//
// Layered on the DeviceHealth machine: a device whose launches keep
// failing (each failure is a *trip*) should stop receiving work for a
// while instead of burning a reset + re-dispatch per wave. The breaker
// follows the classic three-state protocol —
//
//   kClosed    traffic flows; trips accumulate in a sliding window
//   kOpen      tripThreshold trips landed within windowEpochs: the
//              device is quarantined until cooldownEpochs elapse
//   kHalfOpen  cool-down over: the device takes traffic again, and the
//              first completed launch decides (ok -> kClosed, another
//              trip -> kOpen with a fresh cool-down)
//
// — except that *time is logical*: the clock is an epoch counter the
// caller advances (simserve counts drain() completions), never
// wall-clock. Given the same trip/epoch sequence the breaker visits
// the same states on any machine, worker count or shard count, so it
// can sit on the serving path without breaking the byte-identity
// determinism contract.
#pragma once

#include <cstdint>
#include <deque>
#include <string_view>

namespace simtomp::simfault {

/// Trip accounting knobs. All windows are logical epochs.
struct BreakerPolicy {
  /// Trips within windowEpochs that open the breaker. 0 disables the
  /// breaker entirely (it never leaves kClosed).
  uint32_t tripThreshold = 2;
  /// Sliding window width: a trip at epoch e counts against trips at
  /// epochs > e - windowEpochs (0 is treated as 1: this epoch only).
  uint32_t windowEpochs = 4;
  /// Epochs a device stays quarantined before half-open probing.
  uint32_t cooldownEpochs = 2;
};

enum class BreakerState : uint8_t { kClosed = 0, kOpen, kHalfOpen };

[[nodiscard]] std::string_view breakerStateName(BreakerState state);

/// One device's breaker. Not thread-safe: callers serialize access
/// (simserve drives it under the service lock).
class CircuitBreaker {
 public:
  explicit CircuitBreaker(BreakerPolicy policy = {}) : policy_(policy) {}

  /// Record one launch failure at `epoch`. Returns true when this trip
  /// opened (or re-opened) the breaker, i.e. the device must be
  /// quarantined now.
  bool noteTrip(uint64_t epoch);

  /// Advance the logical clock: an open breaker whose cool-down has
  /// elapsed becomes half-open (the caller should route a probe).
  void onEpoch(uint64_t epoch);

  /// A half-open probe launch completed successfully: close. (A failed
  /// probe arrives as noteTrip, which re-opens.) No-op in other states.
  void noteProbeSuccess();

  /// Manual revival (simserve reviveDevice): close and forget history.
  void forceClose();

  /// Force a transition to half-open regardless of remaining cool-down
  /// (panic path: the last serving device must keep taking traffic).
  void forceHalfOpen();

  [[nodiscard]] BreakerState state() const { return state_; }
  /// Total trips ever recorded. A pure function of the fault/epoch
  /// sequence, so safe for byte-identity surfaces.
  [[nodiscard]] uint64_t trips() const { return trips_; }
  /// Times the breaker transitioned closed/half-open -> open.
  [[nodiscard]] uint64_t opens() const { return opens_; }
  /// Epoch at which an open breaker goes half-open (meaningful only
  /// while open).
  [[nodiscard]] uint64_t reopenEpoch() const { return reopen_epoch_; }

 private:
  void open(uint64_t epoch);

  BreakerPolicy policy_;
  BreakerState state_ = BreakerState::kClosed;
  std::deque<uint64_t> window_;  ///< trip epochs, oldest first
  uint64_t trips_ = 0;
  uint64_t opens_ = 0;
  uint64_t reopen_epoch_ = 0;
};

}  // namespace simtomp::simfault
