#include "simfuzz/minimize.h"

#include <vector>

namespace simtomp::simfuzz {

namespace {

using omprt::ExecMode;
using omprt::ForSchedule;

/// Simplicity order for body shrinks: lower is simpler. map carries no
/// inner loop at all; nest is the plainest body that still has one;
/// reduce/atomic/conv add a reduction, contention, or convergence on
/// top of nest.
int bodyRank(BodyKind body) {
  switch (body) {
    case BodyKind::kAffineMap:
      return 0;
    case BodyKind::kSimdNest:
      return 1;
    case BodyKind::kSimdReduce:
    case BodyKind::kAtomicSum:
    case BodyKind::kConvergentMap:
      return 2;
  }
  return 2;
}

/// The ordered shrink ladder for one step. Cost-ordered: launch shape
/// and trip counts first (they dominate the wall-clock of every later
/// oracle call — fiber setup scales with teams × threads, simulation
/// with trips), then simdlen, then structure (simpler body/construct/
/// schedule/modes/pressure), coefficients last. Each shrink's
/// acceptance is independent of the others, so the fixpoint does not
/// depend on this order — only the path cost does. Candidates equal
/// to the input (after normalize()) are dropped.
std::vector<FuzzProgram> shrinkCandidates(const FuzzProgram& p) {
  std::vector<FuzzProgram> out;
  auto push = [&](FuzzProgram q) {
    q.normalize();
    if (!(q == p)) out.push_back(q);
  };

  {
    FuzzProgram q = p;
    q.numTeams = 1;
    push(q);
  }
  {
    FuzzProgram q = p;
    q.threadsPerTeam = 64;
    push(q);
  }
  if (p.outerTrip > 1) {
    {
      FuzzProgram q = p;
      q.outerTrip = p.outerTrip / 2;
      push(q);
    }
    {
      FuzzProgram q = p;
      q.outerTrip = p.outerTrip - 1;
      push(q);
    }
  }
  if (p.innerTrip > 0) {
    {
      FuzzProgram q = p;
      q.innerTrip = p.innerTrip / 2;
      push(q);
    }
    {
      FuzzProgram q = p;
      q.innerTrip = p.innerTrip - 1;
      push(q);
    }
  }
  if (p.simdlen > 2) {
    FuzzProgram q = p;
    q.simdlen = p.simdlen / 2;
    push(q);
  }
  {
    FuzzProgram q = p;
    q.simdlen = 1;
    push(q);
  }
  // Body shrinks move strictly down a simplicity order (map < nest <
  // everything else) — both directions being acceptable would let the
  // ladder alternate map <-> nest forever on a bug that diverges under
  // either body, burning the whole kMaxTested budget.
  if (bodyRank(BodyKind::kAffineMap) < bodyRank(p.body)) {
    FuzzProgram q = p;
    q.body = BodyKind::kAffineMap;
    push(q);
  }
  if (bodyRank(BodyKind::kSimdNest) < bodyRank(p.body)) {
    FuzzProgram q = p;
    q.body = BodyKind::kSimdNest;
    push(q);
  }
  {
    FuzzProgram q = p;
    q.construct = Construct::kDistributeParallelFor;
    push(q);
  }
  {
    FuzzProgram q = p;
    q.schedKind = ForSchedule::kStaticCyclic;
    q.schedChunk = 0;
    push(q);
  }
  {
    FuzzProgram q = p;
    q.teamsMode = ExecMode::kSPMD;
    push(q);
  }
  {
    FuzzProgram q = p;
    q.parallelMode = ExecMode::kSPMD;
    push(q);
  }
  {
    FuzzProgram q = p;
    q.pressure = 0;
    push(q);
  }
  {
    FuzzProgram q = p;
    q.sharingSpaceBytes = omprt::kDefaultSharingSpaceBytes;
    push(q);
  }
  {
    FuzzProgram q = p;
    q.a = 1;
    q.b = 0;
    push(q);
  }
  return out;
}

}  // namespace

MinimizeResult minimizeProgram(const FuzzProgram& failing,
                               const FailPredicate& stillFails) {
  MinimizeResult result;
  result.program = failing;

  // Bound: each accepted step strictly simplifies a bounded grammar,
  // so the fixpoint terminates; the guard only caps pathological
  // predicates (e.g. nondeterministic oracles) from spinning forever.
  constexpr uint32_t kMaxTested = 4096;
  bool progress = true;
  while (progress && result.tested < kMaxTested) {
    progress = false;
    for (const FuzzProgram& candidate : shrinkCandidates(result.program)) {
      ++result.tested;
      if (stillFails(candidate)) {
        result.program = candidate;
        ++result.steps;
        progress = true;
        break;  // restart the ladder from the simplified program
      }
      if (result.tested >= kMaxTested) break;
    }
  }
  return result;
}

}  // namespace simtomp::simfuzz
