// Host-side data environment: OpenMP `target data` semantics.
//
// OpenMP offloading keeps a "present table" mapping host addresses to
// device allocations with reference counts: `map(to:...)` copies in on
// first mapping, `map(from:...)` copies back on last unmapping,
// repeated mappings of the same host object just bump the count. This
// module reproduces that machinery over the simulator's DeviceMemory,
// which the examples and benches use the way a real application uses
// `#pragma omp target data`.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "gpusim/device.h"
#include "support/status.h"

namespace simtomp::hostrt {

enum class MapType : uint8_t { kTo, kFrom, kToFrom, kAlloc };

/// PCIe-style transfer cost model: fixed per-transfer latency plus a
/// bandwidth term, in the same simulator-cycle unit as kernel time, so
/// end-to-end offload cost (copies + kernels) can be compared. Defaults
/// approximate a x16 Gen4 link relative to the default CostModel.
struct TransferModel {
  uint64_t latencyCycles = 2000;      ///< per-transfer setup
  uint64_t cyclesPerKilobyte = 60;    ///< bandwidth term

  [[nodiscard]] uint64_t cyclesFor(uint64_t bytes) const {
    return latencyCycles + (bytes * cyclesPerKilobyte) / 1024;
  }
};

struct TransferStats {
  uint64_t bytesToDevice = 0;
  uint64_t bytesFromDevice = 0;
  uint64_t transfersToDevice = 0;
  uint64_t transfersFromDevice = 0;
  /// Modeled time spent in transfers (TransferModel cycles).
  uint64_t transferCycles = 0;
};

class DataEnvironment {
 public:
  explicit DataEnvironment(gpusim::Device& device,
                           TransferModel transfer_model = {})
      : device_(&device), transfer_model_(transfer_model) {}
  ~DataEnvironment();

  DataEnvironment(const DataEnvironment&) = delete;
  DataEnvironment& operator=(const DataEnvironment&) = delete;

  /// `target enter data map(<type>: host[0:n])`. Copies host->device
  /// for kTo/kToFrom on first mapping; bumps the refcount otherwise.
  Status mapEnter(const void* host, size_t bytes, MapType type);

  /// `target exit data map(<type>: ...)`. Copies device->host for
  /// kFrom/kToFrom when the refcount drops to zero, then releases the
  /// device allocation.
  Status mapExit(const void* host, MapType type);

  /// `target update to/from` on an already-present object.
  Status updateTo(const void* host);
  Status updateFrom(void* host);

  [[nodiscard]] bool isPresent(const void* host) const;
  [[nodiscard]] size_t presentCount() const { return entries_.size(); }
  [[nodiscard]] const TransferStats& stats() const { return stats_; }

  /// Typed device view of a mapped host array (the "use_device_ptr"
  /// moment). Fails if the host pointer is not present.
  template <typename T>
  Result<gpusim::GlobalSpan<T>> deviceSpan(const T* host) {
    const Entry* e = find(host);
    if (e == nullptr) {
      return Status::failedPrecondition("host pointer is not mapped");
    }
    return gpusim::GlobalSpan<T>(
        reinterpret_cast<T*>(device_->memory().raw(e->dev)),
        e->bytes / sizeof(T));
  }

  // Typed convenience wrappers.
  template <typename T>
  Status mapEnter(std::span<T> host, MapType type) {
    return mapEnter(host.data(), host.size_bytes(), type);
  }
  template <typename T>
  Status mapExit(std::span<T> host, MapType type) {
    return mapExit(static_cast<const void*>(host.data()), type);
  }

 private:
  struct Entry {
    const void* host;
    size_t bytes;
    gpusim::DevPtr dev;
    uint32_t refCount;
    MapType firstType;
  };

  Entry* find(const void* host);
  [[nodiscard]] const Entry* find(const void* host) const;
  void copyToDevice(Entry& e);
  void copyFromDevice(Entry& e);

  gpusim::Device* device_;
  TransferModel transfer_model_;
  std::vector<Entry> entries_;
  TransferStats stats_;
};

/// RAII `#pragma omp target data` scope for one host array.
template <typename T>
class MappedSpan {
 public:
  MappedSpan(DataEnvironment& env, std::span<T> host, MapType type)
      : env_(&env), host_(host), type_(type) {
    status_ = env_->mapEnter(host_, type_);
  }
  ~MappedSpan() {
    if (status_.isOk()) (void)env_->mapExit(host_, type_);
  }
  MappedSpan(const MappedSpan&) = delete;
  MappedSpan& operator=(const MappedSpan&) = delete;

  [[nodiscard]] const Status& status() const { return status_; }
  [[nodiscard]] gpusim::GlobalSpan<T> device() {
    auto result = env_->deviceSpan(host_.data());
    SIMTOMP_CHECK(result.isOk(), "MappedSpan::device on unmapped span");
    return result.value();
  }

 private:
  DataEnvironment* env_;
  std::span<T> host_;
  MapType type_;
  Status status_;
};

}  // namespace simtomp::hostrt
