// simtomp_serve: generate and replay launch-service request mixes.
//
//   simtomp_serve gen [--seed S] [--tenants T] [--requests R]
//                     [--pump-every P] [--fault-permille F] [--out FILE]
//   simtomp_serve replay FILE [--devices D] [--shards S] [--workers N]
//                             [--stats FILE]
//   simtomp_serve trace FILE [--devices D] [--shards S] [--workers N]
//                            [--req ID] [--physical] [--ring N]
//                            [--flight FILE] [--perfetto FILE]
//   simtomp_serve chaos [--seeds A..B] [--devices D] [--shards S]
//                       [--workers N] [--epochs E] [--requests R]
//                       [--out FILE] [--trace] [--flight FILE]
//                       [--plant-violation]
//
// `gen` writes a deterministic mix (same flags, same bytes) in the
// format of src/simserve/mix.h. `replay` drives it through a
// LaunchService over D fresh tiny devices and prints the service's
// stats dump — deterministic by contract, so CI replays one mix twice
// and at 1 vs 8 workers and byte-compares the dumps (see docs/
// SERVING.md). `trace` replays the same way with request tracing on
// and prints the observability surfaces of src/simserve/trace.h —
// per-request span timelines (--req narrows to one id), the per-tenant
// SLO burn summary, queue-delay/batch-size histograms and the
// canonical flight-recorder dump — all byte-identical across reruns,
// --workers and --shards; --physical adds device/shard detail and the
// physical ring (not a byte-compare surface), --flight saves the
// flight dump and --perfetto exports per-tenant Chrome/Perfetto
// tracks. `chaos` runs the seeded fault campaign of src/simserve/
// chaos.h and prints its report; the report is byte-identical across
// reruns, --workers and --shards (with or without --trace), and the
// exit code is 0 only when every invariant held for every seed (see
// docs/FAULTS.md). With --trace --flight FILE, a violating seed's
// flight recorder is dumped to FILE; --plant-violation forces one
// synthetic violation on the first seed to drill that path. Exit
// codes: 0 ok, 1 service/verify/invariant failure, 2 usage or parse
// error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "gpusim/trace.h"
#include "hostrt/device_manager.h"
#include "simserve/chaos.h"
#include "simserve/mix.h"
#include "simserve/service.h"
#include "support/status.h"

namespace simtomp {
namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: simtomp_serve gen [--seed S] [--tenants T] [--requests R]\n"
      "                         [--pump-every P] [--fault-permille F]\n"
      "                         [--out FILE]\n"
      "       simtomp_serve replay FILE [--devices D] [--shards S]\n"
      "                                 [--workers N] [--stats FILE]\n"
      "       simtomp_serve trace FILE [--devices D] [--shards S]\n"
      "                                [--workers N] [--req ID] [--physical]\n"
      "                                [--ring N] [--flight FILE]\n"
      "                                [--perfetto FILE]\n"
      "       simtomp_serve chaos [--seeds A..B] [--devices D] [--shards S]\n"
      "                           [--workers N] [--epochs E] [--requests R]\n"
      "                           [--out FILE] [--trace] [--flight FILE]\n"
      "                           [--plant-violation]\n");
  return 2;
}

bool parseFlag(int argc, char** argv, int& i, const char* name,
               uint64_t& value) {
  if (std::strcmp(argv[i], name) != 0) return false;
  if (i + 1 >= argc) return false;
  value = static_cast<uint64_t>(std::strtoull(argv[++i], nullptr, 10));
  return true;
}

int runGen(int argc, char** argv) {
  simserve::MixProfile profile;
  std::string out_path;
  uint64_t v = 0;
  for (int i = 2; i < argc; ++i) {
    if (parseFlag(argc, argv, i, "--seed", v)) {
      profile.seed = v;
    } else if (parseFlag(argc, argv, i, "--tenants", v)) {
      profile.tenants = static_cast<uint32_t>(v);
    } else if (parseFlag(argc, argv, i, "--requests", v)) {
      profile.requests = static_cast<uint32_t>(v);
    } else if (parseFlag(argc, argv, i, "--pump-every", v)) {
      profile.pumpEvery = static_cast<uint32_t>(v);
    } else if (parseFlag(argc, argv, i, "--fault-permille", v)) {
      profile.faultPermille = static_cast<uint32_t>(v);
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      return usage();
    }
  }
  const std::string text = simserve::generateMix(profile).toString();
  if (out_path.empty()) {
    std::fwrite(text.data(), 1, text.size(), stdout);
    return 0;
  }
  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "simtomp_serve: cannot write %s\n",
                 out_path.c_str());
    return 1;
  }
  out << text;
  return 0;
}

int runReplay(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string mix_path = argv[2];
  uint64_t devices = 4, shards = 0, workers = 1;
  std::string stats_path;
  for (int i = 3; i < argc; ++i) {
    uint64_t v = 0;
    if (parseFlag(argc, argv, i, "--devices", v)) {
      devices = v;
    } else if (parseFlag(argc, argv, i, "--shards", v)) {
      shards = v;
    } else if (parseFlag(argc, argv, i, "--workers", v)) {
      workers = v;
    } else if (std::strcmp(argv[i], "--stats") == 0 && i + 1 < argc) {
      stats_path = argv[++i];
    } else {
      return usage();
    }
  }
  if (devices == 0 || workers == 0) return usage();

  std::ifstream in(mix_path);
  if (!in) {
    std::fprintf(stderr, "simtomp_serve: cannot read %s\n", mix_path.c_str());
    return 2;
  }
  const Result<simserve::Mix> mix = simserve::parseMix(in);
  if (!mix.isOk()) {
    std::fprintf(stderr, "simtomp_serve: %s\n",
                 mix.status().toString().c_str());
    return 2;
  }

  std::vector<gpusim::ArchSpec> specs(devices, gpusim::ArchSpec::testTiny());
  hostrt::DeviceManager mgr(std::move(specs));
  simserve::ServiceConfig config;
  config.shardCount = static_cast<uint32_t>(shards);
  simserve::LaunchService service(mgr, config);

  simserve::ReplayOptions options;
  options.hostWorkers = static_cast<uint32_t>(workers);
  const Result<simserve::ReplayReport> report =
      simserve::replayMix(service, mix.value(), options);
  if (!report.isOk()) {
    std::fprintf(stderr, "simtomp_serve: replay failed: %s\n",
                 report.status().toString().c_str());
    return 1;
  }
  std::printf("replay %s: %s\n", mix_path.c_str(),
              report.value().toString().c_str());
  std::ostringstream stats;
  service.dumpStats(stats);
  std::fputs(stats.str().c_str(), stdout);
  if (!stats_path.empty()) {
    std::ofstream stats_out(stats_path);
    if (!stats_out) {
      std::fprintf(stderr, "simtomp_serve: cannot write %s\n",
                   stats_path.c_str());
      return 1;
    }
    stats_out << stats.str();
  }
  return 0;
}

int runTrace(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string mix_path = argv[2];
  uint64_t devices = 4, shards = 0, workers = 1, ring = 8192, req_id = 0;
  bool have_req = false, physical = false;
  std::string flight_path, perfetto_path;
  for (int i = 3; i < argc; ++i) {
    uint64_t v = 0;
    if (parseFlag(argc, argv, i, "--devices", v)) {
      devices = v;
    } else if (parseFlag(argc, argv, i, "--shards", v)) {
      shards = v;
    } else if (parseFlag(argc, argv, i, "--workers", v)) {
      workers = v;
    } else if (parseFlag(argc, argv, i, "--ring", v)) {
      ring = v;
    } else if (parseFlag(argc, argv, i, "--req", v)) {
      req_id = v;
      have_req = true;
    } else if (std::strcmp(argv[i], "--physical") == 0) {
      physical = true;
    } else if (std::strcmp(argv[i], "--flight") == 0 && i + 1 < argc) {
      flight_path = argv[++i];
    } else if (std::strcmp(argv[i], "--perfetto") == 0 && i + 1 < argc) {
      perfetto_path = argv[++i];
    } else {
      return usage();
    }
  }
  if (devices == 0 || workers == 0 || ring == 0) return usage();

  std::ifstream in(mix_path);
  if (!in) {
    std::fprintf(stderr, "simtomp_serve: cannot read %s\n", mix_path.c_str());
    return 2;
  }
  const Result<simserve::Mix> mix = simserve::parseMix(in);
  if (!mix.isOk()) {
    std::fprintf(stderr, "simtomp_serve: %s\n",
                 mix.status().toString().c_str());
    return 2;
  }

  std::vector<gpusim::ArchSpec> specs(devices, gpusim::ArchSpec::testTiny());
  hostrt::DeviceManager mgr(std::move(specs));
  simserve::ServiceConfig config;
  config.shardCount = static_cast<uint32_t>(shards);
  config.trace.enabled = true;
  config.trace.ringCapacity = ring;
  simserve::LaunchService service(mgr, config);

  simserve::ReplayOptions options;
  options.hostWorkers = static_cast<uint32_t>(workers);
  const Result<simserve::ReplayReport> report =
      simserve::replayMix(service, mix.value(), options);
  if (!report.isOk()) {
    std::fprintf(stderr, "simtomp_serve: replay failed: %s\n",
                 report.status().toString().c_str());
    return 1;
  }
  simserve::ServiceTracer* tracer = service.tracer();
  std::cout << "trace " << mix_path << ": " << report.value().toString()
            << "\n";
  if (have_req) {
    const Status st = tracer->dumpTimeline(std::cout, req_id, physical);
    if (!st.isOk()) {
      std::fprintf(stderr, "simtomp_serve: %s\n", st.toString().c_str());
      return 2;
    }
  } else {
    tracer->dumpTimelines(std::cout, physical);
  }
  tracer->dumpTenantSummary(std::cout);
  tracer->dumpHistograms(std::cout);
  tracer->dumpFlight(std::cout, physical);
  if (!flight_path.empty()) {
    const Status st = tracer->dumpFlightToFile(flight_path, "on_demand");
    if (!st.isOk()) {
      std::fprintf(stderr, "simtomp_serve: %s\n", st.toString().c_str());
      return 1;
    }
  }
  if (!perfetto_path.empty()) {
    gpusim::TraceRecorder recorder;
    tracer->exportPerfetto(recorder);
    const Status st = recorder.writeChromeJson(perfetto_path);
    if (!st.isOk()) {
      std::fprintf(stderr, "simtomp_serve: %s\n", st.toString().c_str());
      return 1;
    }
  }
  return 0;
}

/// Parse "A..B" (inclusive) or a single "N" (meaning 0..N).
bool parseSeedRange(const char* text, uint64_t& lo, uint64_t& hi) {
  const char* dots = std::strstr(text, "..");
  char* end = nullptr;
  if (dots == nullptr) {
    lo = 0;
    hi = std::strtoull(text, &end, 10);
    return end != text && *end == '\0';
  }
  const std::string a(text, dots);
  lo = std::strtoull(a.c_str(), &end, 10);
  if (end == a.c_str() || *end != '\0') return false;
  hi = std::strtoull(dots + 2, &end, 10);
  return end != dots + 2 && *end == '\0';
}

int runChaos(int argc, char** argv) {
  simserve::ChaosConfig config;
  std::string out_path;
  uint64_t v = 0;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--seeds") == 0 && i + 1 < argc) {
      if (!parseSeedRange(argv[++i], config.seedLo, config.seedHi)) {
        return usage();
      }
    } else if (std::strncmp(argv[i], "--seeds=", 8) == 0) {
      if (!parseSeedRange(argv[i] + 8, config.seedLo, config.seedHi)) {
        return usage();
      }
    } else if (parseFlag(argc, argv, i, "--devices", v)) {
      config.devices = static_cast<uint32_t>(v);
    } else if (parseFlag(argc, argv, i, "--shards", v)) {
      config.shards = static_cast<uint32_t>(v);
    } else if (parseFlag(argc, argv, i, "--workers", v)) {
      config.workers = static_cast<uint32_t>(v);
    } else if (parseFlag(argc, argv, i, "--epochs", v)) {
      config.epochs = static_cast<uint32_t>(v);
    } else if (parseFlag(argc, argv, i, "--requests", v)) {
      config.requests = static_cast<uint32_t>(v);
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      config.trace = true;
    } else if (std::strcmp(argv[i], "--flight") == 0 && i + 1 < argc) {
      config.flightPath = argv[++i];
    } else if (std::strcmp(argv[i], "--plant-violation") == 0) {
      config.plantViolation = true;
    } else {
      return usage();
    }
  }
  const Result<simserve::ChaosReport> report =
      simserve::runChaosCampaign(config);
  if (!report.isOk()) {
    std::fprintf(stderr, "simtomp_serve: %s\n",
                 report.status().toString().c_str());
    return 2;
  }
  const std::string& text = report.value().text;
  std::fwrite(text.data(), 1, text.size(), stdout);
  if (!out_path.empty()) {
    std::ofstream out(out_path);
    if (!out) {
      std::fprintf(stderr, "simtomp_serve: cannot write %s\n",
                   out_path.c_str());
      return 1;
    }
    out << text;
  }
  if (!report.value().violations.empty()) {
    std::fprintf(stderr,
                 "simtomp_serve: chaos campaign found %zu violations\n",
                 report.value().violations.size());
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace simtomp

int main(int argc, char** argv) {
  if (argc < 2) return simtomp::usage();
  if (std::strcmp(argv[1], "gen") == 0) return simtomp::runGen(argc, argv);
  if (std::strcmp(argv[1], "replay") == 0) {
    return simtomp::runReplay(argc, argv);
  }
  if (std::strcmp(argv[1], "trace") == 0) {
    return simtomp::runTrace(argc, argv);
  }
  if (std::strcmp(argv[1], "chaos") == 0) {
    return simtomp::runChaos(argc, argv);
  }
  return simtomp::usage();
}
