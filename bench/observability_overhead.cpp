// Observability overhead guard: the simprof hooks ride every launch
// (ThreadCtx carries the profile pointer even when profiling is off),
// so this bench pins their cost. The contract is absolute: profiling
// observes the thread clocks and never charges, so the *entire*
// KernelStats — cycles, busy cycles, every counter — must be
// bit-identical with profiling off, on, and on with deep tracing
// attached. The host wall-clock delta is the real price, recorded so
// the trajectory is tracked across PRs.
#include <benchmark/benchmark.h>

#include <cstdlib>

#include "bench_common.h"
#include "dsl/dsl.h"
#include "gpusim/trace.h"
#include "simprof/profile.h"

namespace {

using namespace simtomp;
using bench::checkOk;
using bench::Row;

struct RunResult {
  gpusim::KernelStats stats;
  double hostMs = 0.0;
};

/// The fig9-style three-level kernel: wide enough that the per-construct
/// enter/exit hooks fire millions of times, so any charging or clock
/// perturbation (or meaningful host cost) would show up.
RunResult runKernel(simprof::ProfileMode mode, bool trace) {
  gpusim::Device dev;
  gpusim::TraceRecorder recorder;
  if (trace) dev.setTraceRecorder(&recorder);
  dsl::LaunchSpec spec;
  spec.numTeams = 64;
  spec.threadsPerTeam = 128;
  spec.teamsMode = omprt::ExecMode::kSPMD;
  spec.parallelMode = omprt::ExecMode::kSPMD;
  spec.simdlen = 32;
  spec.faultSpec = "off";  // pin injection off regardless of env
  spec.profile.mode = mode;
  bench::WallTimer timer;
  auto stats = dsl::targetTeamsDistributeParallelFor(
      dev, spec, 8192, [](dsl::OmpContext& ctx, uint64_t) {
        dsl::simd(ctx, 64,
                  [](dsl::OmpContext& c, uint64_t) { c.gpu().work(4); });
      });
  RunResult out;
  out.stats = checkOk(stats, "observability overhead kernel");
  out.hostMs = timer.elapsedMs();
  return out;
}

void BM_Observability(benchmark::State& state) {
  const simprof::ProfileMode mode = state.range(0) != 0
                                        ? simprof::ProfileMode::kOn
                                        : simprof::ProfileMode::kOff;
  uint64_t cycles = 0;
  for (auto _ : state) cycles = runKernel(mode, false).stats.cycles;
  state.counters["sim_cycles"] = static_cast<double>(cycles);
}
BENCHMARK(BM_Observability)
    ->Arg(0)
    ->Arg(1)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  ::unsetenv("SIMTOMP_PROF");
  ::unsetenv("SIMTOMP_FAULT");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  const RunResult off = runKernel(simprof::ProfileMode::kOff, false);
  const RunResult on = runKernel(simprof::ProfileMode::kOn, false);
  const RunResult traced = runKernel(simprof::ProfileMode::kOn, true);
  // toJson covers every scalar and every counter, so a string compare
  // is a full-stats bit-identity check.
  const std::string want = off.stats.toJson();
  if (on.stats.toJson() != want || traced.stats.toJson() != want) {
    std::fprintf(stderr,
                 "FATAL: profiling perturbed KernelStats\n  off: %s\n  on:  "
                 "%s\n  trace: %s\n",
                 want.c_str(), on.stats.toJson().c_str(),
                 traced.stats.toJson().c_str());
    std::abort();
  }
  bench::printTable(
      "Observability overhead (profiling must not perturb cycles)",
      "profiling off", off.stats.cycles,
      {{"profiling on", on.stats.cycles, 1.0, on.hostMs},
       {"profiling on + deep trace", traced.stats.cycles, 1.0, traced.hostMs},
       {"profiling off", off.stats.cycles, 1.0, off.hostMs}});
  (void)bench::writeBenchJson("observability");
  return 0;
}
