// Deterministic xoshiro256** RNG plus small distribution helpers.
//
// Workload generators (CSR matrices, stencil inputs, ...) must be
// reproducible across runs and platforms, so we avoid std::mt19937's
// distribution-implementation variance and keep everything self-contained.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

namespace simtomp {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(uint64_t seed) {
    // SplitMix64 expansion of the seed into the xoshiro state.
    uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s = z ^ (z >> 31);
    }
  }

  uint64_t next() {
    const uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound == 0 returns 0.
  uint64_t nextBelow(uint64_t bound) {
    if (bound == 0) return 0;
    // Rejection sampling to avoid modulo bias.
    const uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const uint64_t r = next();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform in [lo, hi] inclusive.
  int64_t nextInRange(int64_t lo, int64_t hi) {
    if (hi <= lo) return lo;
    return lo + static_cast<int64_t>(
                    nextBelow(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double nextDouble() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double nextDouble(double lo, double hi) {
    return lo + (hi - lo) * nextDouble();
  }

  /// Geometric-ish skewed integer in [1, maxValue]: small values common,
  /// long tail up to maxValue. Used to draw CSR row lengths with the
  /// "varying sparsity" the paper's sparse_matvec kernel exhibits.
  uint32_t nextSkewed(uint32_t mean, uint32_t maxValue) {
    if (maxValue == 0) return 0;
    double u = nextDouble();
    // Exponential with the requested mean, clamped to [1, maxValue].
    double v = -static_cast<double>(mean) * std::log(1.0 - u);
    if (v < 1.0) v = 1.0;
    if (v > static_cast<double>(maxValue)) v = static_cast<double>(maxValue);
    return static_cast<uint32_t>(v);
  }

  /// Derive an independent deterministic sub-stream. The child depends
  /// only on the parent's current state and `stream`, so callers can
  /// fork one stream per axis (or per fuzz seed) without the draws of
  /// one axis perturbing another's.
  [[nodiscard]] Rng fork(uint64_t stream) const {
    Rng child(0);
    child.reseed(state_[0] ^ rotl(state_[2], 17) ^
                 (stream * 0xd1342543de82ef95ULL + 0x2545f4914f6cdd1dULL));
    return child;
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& values) {
    for (size_t i = values.size(); i > 1; --i) {
      const size_t j = static_cast<size_t>(nextBelow(i));
      std::swap(values[i - 1], values[j]);
    }
  }

 private:
  static uint64_t rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4] = {};
};

}  // namespace simtomp
