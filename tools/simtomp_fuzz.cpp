// simtomp_fuzz: the deterministic differential kernel fuzzer.
//
//   simtomp_fuzz run --seeds=A..B [options]
//       Generate one program per seed in [A, B), run each through the
//       differential matrix (host-serial reference, worker counts,
//       fast-path modes, arch profiles, simcheck), minimize every
//       divergence, and print the findings log. The log is
//       byte-identical across reruns and for any SIMTOMP_HOST_WORKERS.
//       Exit 0 when clean, 1 when any seed diverged.
//   simtomp_fuzz show --seed=N [--salt=S]
//       Print seed N's program in canonical text, without running it.
//   simtomp_fuzz repro <file>
//       Re-run the program line stored in <file> (first non-comment
//       line; '-' reads stdin) through the matrix. Exit 1 if it still
//       diverges — a landed counterexample regressing fails loudly.
//   simtomp_fuzz minimize <file>
//       Minimize the (diverging) program in <file>; prints the shrink
//       trail and the minimized canonical line.
//
// Options for `run`:
//   --seeds=A..B     seed range (default 0..16)
//   --salt=S         generator salt (default 0; CI pins 0)
//   --inject=KIND    none|offbyone|dropiter — compile a known bug into
//                    every generated kernel (fuzzer self-test)
//   --fault=SPEC     arm a simfault plan on every cell (default off)
//   --tiny-only      skip the cross-arch (a100/mi100) cells
//   --no-minimize    report divergences without shrinking them
//   --emit-repro=DIR write each finding's minimized program to
//                    DIR/seed<N>.fuzzprog
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "simfuzz/generator.h"
#include "simfuzz/harness.h"
#include "simfuzz/minimize.h"

using namespace simtomp;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: simtomp_fuzz run [--seeds=A..B] [--salt=S] "
               "[--inject=none|offbyone|dropiter] [--fault=SPEC]\n"
               "                        [--tiny-only] [--no-minimize] "
               "[--emit-repro=DIR]\n"
               "       simtomp_fuzz show --seed=N [--salt=S]\n"
               "       simtomp_fuzz repro <file|->\n"
               "       simtomp_fuzz minimize <file|->\n");
  return 2;
}

bool parseU64(const char* text, uint64_t& out) {
  char* end = nullptr;
  out = std::strtoull(text, &end, 10);
  return end != text && *end == '\0';
}

/// --seeds=A..B (B exclusive); a bare --seeds=N means [N, N+1).
bool parseSeedRange(const char* text, uint64_t& begin, uint64_t& end) {
  const char* dots = std::strstr(text, "..");
  if (dots == nullptr) {
    if (!parseU64(text, begin)) return false;
    end = begin + 1;
    return true;
  }
  const std::string head(text, dots - text);
  if (!parseU64(head.c_str(), begin) || !parseU64(dots + 2, end)) return false;
  return end >= begin;
}

bool readProgramFile(const char* path, std::string& text) {
  if (std::strcmp(path, "-") == 0) {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    text = buffer.str();
    return true;
  }
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  text = buffer.str();
  return true;
}

void printNotes(const simfuzz::DiffResult& diff) {
  for (const std::string& note : diff.notes) {
    std::printf("  note %s\n", note.c_str());
  }
  if (diff.droppedNotes != 0) {
    std::printf("  (+%llu more notes)\n",
                static_cast<unsigned long long>(diff.droppedNotes));
  }
}

int cmdRun(int argc, char** argv) {
  simfuzz::CampaignOptions opt;
  std::string emitDir;
  for (int i = 0; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--seeds=", 8) == 0) {
      if (!parseSeedRange(arg + 8, opt.seedBegin, opt.seedEnd)) return usage();
    } else if (std::strncmp(arg, "--salt=", 7) == 0) {
      if (!parseU64(arg + 7, opt.generatorSalt)) return usage();
    } else if (std::strncmp(arg, "--inject=", 9) == 0) {
      const char* kind = arg + 9;
      if (std::strcmp(kind, "none") == 0) {
        opt.inject = simfuzz::InjectKind::kNone;
      } else if (std::strcmp(kind, "offbyone") == 0) {
        opt.inject = simfuzz::InjectKind::kOffByOne;
      } else if (std::strcmp(kind, "dropiter") == 0) {
        opt.inject = simfuzz::InjectKind::kDropIteration;
      } else {
        return usage();
      }
    } else if (std::strncmp(arg, "--fault=", 8) == 0) {
      opt.diff.faultSpec = arg + 8;
    } else if (std::strcmp(arg, "--tiny-only") == 0) {
      opt.diff.crossArch = false;
    } else if (std::strcmp(arg, "--no-minimize") == 0) {
      opt.minimize = false;
    } else if (std::strncmp(arg, "--emit-repro=", 13) == 0) {
      emitDir = arg + 13;
    } else {
      return usage();
    }
  }

  const simfuzz::CampaignResult result = simfuzz::runCampaign(opt);
  std::fputs(result.log.c_str(), stdout);

  if (!emitDir.empty()) {
    for (const simfuzz::Finding& finding : result.findings) {
      const std::string path =
          emitDir + "/seed" + std::to_string(finding.seed) + ".fuzzprog";
      std::ofstream out(path);
      if (!out) {
        std::fprintf(stderr, "simtomp_fuzz: cannot write %s\n", path.c_str());
        return 2;
      }
      out << "# simtomp_fuzz finding, seed " << finding.seed << " ("
          << finding.notes.size() << " notes)\n"
          << finding.minimized.serialize() << "\n";
    }
  }
  return result.findings.empty() ? 0 : 1;
}

int cmdShow(int argc, char** argv) {
  uint64_t seed = 0;
  uint64_t salt = 0;
  bool haveSeed = false;
  for (int i = 0; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--seed=", 7) == 0) {
      if (!parseU64(arg + 7, seed)) return usage();
      haveSeed = true;
    } else if (std::strncmp(arg, "--salt=", 7) == 0) {
      if (!parseU64(arg + 7, salt)) return usage();
    } else {
      return usage();
    }
  }
  if (!haveSeed) return usage();
  const simfuzz::Generator gen(salt);
  std::printf("%s\n", gen.generate(seed).serialize().c_str());
  return 0;
}

int cmdRepro(const char* path) {
  std::string text;
  if (!readProgramFile(path, text)) {
    std::fprintf(stderr, "simtomp_fuzz: cannot read %s\n", path);
    return 2;
  }
  const auto parsed = simfuzz::FuzzProgram::parse(text);
  if (!parsed.isOk()) {
    std::fprintf(stderr, "simtomp_fuzz: %s\n",
                 parsed.status().toString().c_str());
    return 2;
  }
  const simfuzz::FuzzProgram program = parsed.value();
  std::printf("program: %s\n", program.serialize().c_str());
  const simfuzz::DiffResult diff = simfuzz::diffProgram(program);
  if (!diff.diverged()) {
    std::printf("clean (%llu runs)\n",
                static_cast<unsigned long long>(diff.runs));
    return 0;
  }
  std::printf("DIVERGE notes=%zu\n", diff.notes.size());
  printNotes(diff);
  return 1;
}

int cmdMinimize(const char* path) {
  std::string text;
  if (!readProgramFile(path, text)) {
    std::fprintf(stderr, "simtomp_fuzz: cannot read %s\n", path);
    return 2;
  }
  const auto parsed = simfuzz::FuzzProgram::parse(text);
  if (!parsed.isOk()) {
    std::fprintf(stderr, "simtomp_fuzz: %s\n",
                 parsed.status().toString().c_str());
    return 2;
  }
  const simfuzz::FuzzProgram program = parsed.value();
  std::printf("program: %s\n", program.serialize().c_str());

  const simfuzz::DiffResult initial = simfuzz::diffProgram(program);
  if (!initial.diverged()) {
    std::printf("clean — nothing to minimize\n");
    return 0;
  }
  printNotes(initial);

  simfuzz::DiffOptions minimizeOpt;
  minimizeOpt.failFast = true;
  const simfuzz::MinimizeResult mini = simfuzz::minimizeProgram(
      program, [&](const simfuzz::FuzzProgram& candidate) {
        return simfuzz::diffProgram(candidate, minimizeOpt).diverged();
      });
  std::printf("minimized (%u steps, %u candidates): %s\n", mini.steps,
              mini.tested, mini.program.serialize().c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const char* cmd = argv[1];
  if (std::strcmp(cmd, "run") == 0) return cmdRun(argc - 2, argv + 2);
  if (std::strcmp(cmd, "show") == 0) return cmdShow(argc - 2, argv + 2);
  if (std::strcmp(cmd, "repro") == 0 && argc == 3) return cmdRepro(argv[2]);
  if (std::strcmp(cmd, "minimize") == 0 && argc == 3) {
    return cmdMinimize(argv[2]);
  }
  return usage();
}
