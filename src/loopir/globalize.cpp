#include "loopir/globalize.h"

#include "gpusim/block.h"
#include "support/log.h"

namespace simtomp::loopir {

Globalizer::~Globalizer() {
  gpusim::BlockEngine& block = ctx_->gpu().block();
  for (std::byte* ptr : shared_blocks_) {
    const Status freed = block.sharedMemory().free(ptr);
    if (!freed.isOk()) {
      SIMTOMP_WARN("globalizer shared free failed: %s",
                   freed.toString().c_str());
    }
  }
  for (gpusim::DevPtr ptr : overflow_blocks_) {
    const Status freed = block.globalMemory().free(ptr);
    if (!freed.isOk()) {
      SIMTOMP_WARN("globalizer overflow free failed: %s",
                   freed.toString().c_str());
    }
  }
}

void Globalizer::chargeCopy(size_t bytes, bool store) {
  gpusim::ThreadCtx& t = ctx_->gpu();
  const uint64_t words = (bytes + 7) / 8;
  t.chargeLocal(words);  // read (or write) the thread-local side
  if (store) {
    t.chargeSharedStore(words);
  } else {
    t.chargeSharedLoad(words);
  }
}

void* Globalizer::globalizeBytes(const void* src, size_t bytes,
                                 size_t align) {
  SIMTOMP_CHECK(bytes > 0, "cannot globalize an empty object");
  gpusim::ThreadCtx& t = ctx_->gpu();
  gpusim::BlockEngine& block = t.block();
  std::byte* dst = block.sharedMemory().allocate(bytes, align);
  if (dst != nullptr) {
    shared_blocks_.push_back(dst);
    chargeCopy(bytes, /*store=*/true);
  } else {
    // Scratchpad exhausted: promote to global memory instead (the
    // "untraceable or oversized" path of paper section 4.3).
    auto ptr = block.globalMemory().allocate(bytes, align);
    SIMTOMP_CHECK(ptr.isOk(), "global memory exhausted while globalizing");
    overflow_blocks_.push_back(ptr.value());
    dst = block.globalMemory().raw(ptr.value());
    t.charge(gpusim::Counter::kGlobalAlloc, t.cost().globalAccess * 4);
    const uint64_t words = (bytes + 7) / 8;
    t.chargeLocal(words);
    t.chargeGlobalStore(words);
  }
  std::memcpy(dst, src, bytes);
  return dst;
}

}  // namespace simtomp::loopir
