#include "gpusim/trace.h"

#include <cstdio>
#include <fstream>

namespace simtomp::gpusim {

namespace {

/// JSON string escaping for event names: kernel labels are
/// user-supplied and would otherwise break the Chrome trace output on
/// a quote, backslash or control character.
void writeJsonEscaped(std::ostream& out, const std::string& text) {
  for (const char c : text) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\b': out << "\\b"; break;
      case '\f': out << "\\f"; break;
      case '\n': out << "\\n"; break;
      case '\r': out << "\\r"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out << buf;
        } else {
          out << c;
        }
    }
  }
}

}  // namespace

void TraceRecorder::recordBlock(uint32_t block_id, uint32_t sm_id,
                                uint64_t start, uint64_t duration) {
  events_.push_back(
      {"block " + std::to_string(block_id), sm_id, start, duration});
}

void TraceRecorder::recordKernel(std::string name, uint64_t duration) {
  events_.push_back({std::move(name), kKernelTrack, 0, duration});
}

void TraceRecorder::writeChromeJson(std::ostream& out) const {
  out << "[\n";
  bool first = true;
  for (const Event& e : events_) {
    if (!first) out << ",\n";
    first = false;
    const uint64_t tid = e.track == kKernelTrack ? 0 : e.track + 1;
    const char* pid = e.track == kKernelTrack ? "0" : "1";
    out << "  {\"name\": \"";
    writeJsonEscaped(out, e.name);
    out << "\", \"ph\": \"X\", \"pid\": " << pid
        << ", \"tid\": " << tid << ", \"ts\": " << e.startCycle
        << ", \"dur\": " << e.durationCycles << "}";
  }
  out << "\n]\n";
}

Status TraceRecorder::writeChromeJson(const std::string& path) const {
  std::ofstream file(path);
  if (!file) {
    return Status::invalidArgument("cannot open trace file: " + path);
  }
  writeChromeJson(file);
  if (!file.good()) {
    return Status::internal("I/O error writing trace file: " + path);
  }
  return Status::ok();
}

}  // namespace simtomp::gpusim
