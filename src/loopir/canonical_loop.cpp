#include "loopir/canonical_loop.h"

namespace simtomp::loopir {

Result<CanonicalLoop> CanonicalLoop::make(int64_t start, int64_t stop,
                                          int64_t step) {
  if (step == 0) {
    return Status::invalidArgument("canonical loop step must be non-zero");
  }
  uint64_t trip = 0;
  if (step > 0) {
    if (stop > start) {
      const uint64_t span = static_cast<uint64_t>(stop - start);
      trip = (span + static_cast<uint64_t>(step) - 1) /
             static_cast<uint64_t>(step);
    }
  } else {
    if (start > stop) {
      const uint64_t span = static_cast<uint64_t>(start - stop);
      const uint64_t mag = static_cast<uint64_t>(-step);
      trip = (span + mag - 1) / mag;
    }
  }
  return CanonicalLoop(start, step, trip);
}

CanonicalLoop CanonicalLoop::upTo(uint64_t n) {
  return CanonicalLoop(0, 1, n);
}

}  // namespace simtomp::loopir
