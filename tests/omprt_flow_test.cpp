// Protocol-flow tests: assert the exact state-machine transitions of
// paper Figs. 5 and 7 by recording per-thread event sequences.
#include <gtest/gtest.h>

#include <map>
#include <mutex>
#include <vector>

#include "omprt/runtime.h"
#include "omprt/target.h"

namespace simtomp::omprt {
namespace {

using gpusim::ArchSpec;
using gpusim::Device;

/// Thread-ordered event log. The block's fibers run on one OS thread,
/// so plain containers are safe; the mutex guards cross-block cases.
class EventLog {
 public:
  void record(uint32_t team, uint32_t tid, const std::string& event) {
    std::lock_guard<std::mutex> lock(mutex_);
    events_[{team, tid}].push_back(event);
  }
  std::vector<std::string> of(uint32_t team, uint32_t tid) {
    std::lock_guard<std::mutex> lock(mutex_);
    return events_[{team, tid}];
  }

 private:
  std::mutex mutex_;
  std::map<std::pair<uint32_t, uint32_t>, std::vector<std::string>> events_;
};

struct FlowArgs {
  EventLog* log;
};

void flowSimdBody(OmpContext& ctx, uint64_t iv, void** args) {
  auto* fa = static_cast<FlowArgs*>(args[0]);
  if (iv == ctx.simdGroupId()) {  // once per lane: its first iteration
    fa->log->record(ctx.teamNum(), ctx.gpu().threadId(), "simd-body");
  }
}

void flowRegion(OmpContext& ctx, void** args) {
  auto* fa = static_cast<FlowArgs*>(args[0]);
  fa->log->record(ctx.teamNum(), ctx.gpu().threadId(), "region-enter");
  rt::simd(ctx, &flowSimdBody, 16, args, 1);
  fa->log->record(ctx.teamNum(), ctx.gpu().threadId(), "region-exit");
}

TEST(FlowTest, GenericTeamsGenericParallelFig5) {
  // Fig. 5: the full generic/generic program flow. Team main runs the
  // target region; worker threads run parallel regions via the team
  // state machine; SIMD workers see only simd bodies.
  Device dev(ArchSpec::testTiny());
  EventLog log;
  FlowArgs fa{&log};
  void* args[] = {&fa};
  TargetConfig config;
  config.teamsMode = ExecMode::kGeneric;
  config.numTeams = 1;
  config.threadsPerTeam = 32;
  auto stats = launchTarget(dev, config, [&](OmpContext& ctx) {
    log.record(ctx.teamNum(), ctx.gpu().threadId(), "target-region");
    rt::parallel(ctx, &flowRegion, args, 1, {ExecMode::kGeneric, 8});
    log.record(ctx.teamNum(), ctx.gpu().threadId(), "after-parallel");
  });
  ASSERT_TRUE(stats.isOk());

  // Team main = thread 32 (lane 0 of the extra warp): target region
  // code only — it does NOT execute the parallel region.
  EXPECT_EQ(log.of(0, 32),
            (std::vector<std::string>{"target-region", "after-parallel"}));
  // SIMD group leaders (worker threads 0, 8, 16, 24): region body, one
  // simd-body (their lane's iteration), region exit.
  for (uint32_t leader : {0u, 8u, 16u, 24u}) {
    EXPECT_EQ(log.of(0, leader),
              (std::vector<std::string>{"region-enter", "simd-body",
                                        "region-exit"}))
        << "leader " << leader;
  }
  // SIMD workers (e.g. threads 1..7): only the simd body, via the
  // warp-level state machine — never the region code.
  for (uint32_t worker : {1u, 7u, 9u, 31u}) {
    EXPECT_EQ(log.of(0, worker), (std::vector<std::string>{"simd-body"}))
        << "worker " << worker;
  }
  // Idle lanes of the extra main warp (threads 33..63): nothing.
  for (uint32_t idle : {33u, 40u, 63u}) {
    EXPECT_TRUE(log.of(0, idle).empty()) << "idle " << idle;
  }
}

TEST(FlowTest, SpmdWorkerFlowFig7) {
  // Fig. 7: SPMD-mode parallel regions are executed whole by every
  // worker thread (no state machine).
  Device dev(ArchSpec::testTiny());
  EventLog log;
  FlowArgs fa{&log};
  void* args[] = {&fa};
  TargetConfig config;
  config.teamsMode = ExecMode::kSPMD;
  config.numTeams = 1;
  config.threadsPerTeam = 32;
  auto stats = launchTarget(dev, config, [&](OmpContext& ctx) {
    rt::parallel(ctx, &flowRegion, args, 1, {ExecMode::kSPMD, 8});
  });
  ASSERT_TRUE(stats.isOk());
  for (uint32_t tid = 0; tid < 32; ++tid) {
    EXPECT_EQ(log.of(0, tid),
              (std::vector<std::string>{"region-enter", "simd-body",
                                        "region-exit"}))
        << "thread " << tid;
  }
}

TEST(FlowTest, TerminationSignalEndsStateMachine) {
  // After the parallel region ends (leader publishes nullptr), SIMD
  // workers must exit their state machine; a second parallel region
  // restarts it cleanly.
  Device dev(ArchSpec::testTiny());
  EventLog log;
  FlowArgs fa{&log};
  void* args[] = {&fa};
  TargetConfig config;
  config.teamsMode = ExecMode::kSPMD;
  config.numTeams = 1;
  config.threadsPerTeam = 32;
  auto stats = launchTarget(dev, config, [&](OmpContext& ctx) {
    rt::parallel(ctx, &flowRegion, args, 1, {ExecMode::kGeneric, 8});
    rt::parallel(ctx, &flowRegion, args, 1, {ExecMode::kGeneric, 8});
  });
  ASSERT_TRUE(stats.isOk());
  // Workers see exactly two simd bodies: one per region's loop.
  EXPECT_EQ(log.of(0, 1),
            (std::vector<std::string>{"simd-body", "simd-body"}));
  // Leaders see the full sequence twice.
  EXPECT_EQ(log.of(0, 8),
            (std::vector<std::string>{"region-enter", "simd-body",
                                      "region-exit", "region-enter",
                                      "simd-body", "region-exit"}));
}

TEST(FlowTest, MultipleTeamsHaveIndependentFlows) {
  Device dev(ArchSpec::testTiny());
  EventLog log;
  FlowArgs fa{&log};
  void* args[] = {&fa};
  TargetConfig config;
  config.teamsMode = ExecMode::kGeneric;
  config.numTeams = 2;
  config.threadsPerTeam = 32;
  auto stats = launchTarget(dev, config, [&](OmpContext& ctx) {
    rt::parallel(ctx, &flowRegion, args, 1, {ExecMode::kGeneric, 8});
  });
  ASSERT_TRUE(stats.isOk());
  for (uint32_t team = 0; team < 2; ++team) {
    EXPECT_EQ(log.of(team, 0).size(), 3u);   // leader sequence
    EXPECT_EQ(log.of(team, 1).size(), 1u);   // worker: simd body only
    EXPECT_TRUE(log.of(team, 32).empty());   // team main logs nothing
  }
}

}  // namespace
}  // namespace simtomp::omprt
