// Tests for the counter name table and KernelStats serialization: the
// table must cover every counter exactly once (simtomp_info --counters,
// the profiler and the JSON writer all render from it), and toJson must
// round-trip every counter by name.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "gpusim/stats.h"

namespace simtomp::gpusim {
namespace {

TEST(CounterNameTest, EveryCounterHasUniqueNonEmptyName) {
  std::set<std::string> seen;
  for (size_t i = 0; i < kNumCounters; ++i) {
    const auto c = static_cast<Counter>(i);
    const std::string name(counterName(c));
    EXPECT_FALSE(name.empty()) << "counter " << i;
    EXPECT_EQ(name.find(' '), std::string::npos)
        << name << " must be identifier-like (used as a JSON/CSV key)";
    EXPECT_TRUE(seen.insert(name).second) << "duplicate name " << name;
  }
}

TEST(CounterNameTest, EveryCounterHasDescription) {
  std::set<std::string> seen;
  for (size_t i = 0; i < kNumCounters; ++i) {
    const auto c = static_cast<Counter>(i);
    const std::string help(counterDescription(c));
    EXPECT_FALSE(help.empty()) << counterName(c);
    EXPECT_TRUE(seen.insert(help).second)
        << "duplicate description for " << counterName(c);
  }
}

TEST(CounterNameTest, FromNameInvertsName) {
  for (size_t i = 0; i < kNumCounters; ++i) {
    const auto c = static_cast<Counter>(i);
    EXPECT_EQ(counterFromName(counterName(c)), c);
  }
  EXPECT_EQ(counterFromName("no_such_counter"), Counter::kCount);
  EXPECT_EQ(counterFromName(""), Counter::kCount);
}

TEST(KernelStatsJsonTest, RoundTripsEveryCounterByName) {
  KernelStats stats;
  stats.cycles = 12345;
  stats.busyCycles = 999;
  stats.numBlocks = 8;
  // Give every counter a distinct nonzero value so a swapped or dropped
  // key cannot cancel out.
  for (size_t i = 0; i < kNumCounters; ++i) {
    stats.counters.values[i] = 100 + i;
  }
  const std::string json = stats.toJson();
  for (size_t i = 0; i < kNumCounters; ++i) {
    const auto c = static_cast<Counter>(i);
    const std::string key =
        "\"" + std::string(counterName(c)) + "\": " + std::to_string(100 + i);
    EXPECT_NE(json.find(key), std::string::npos)
        << "missing or wrong: " << key;
    // And the name parses back to the same counter, so a consumer can
    // rebuild the CounterSet from the JSON keys alone.
    EXPECT_EQ(counterFromName(counterName(c)), c);
  }
  EXPECT_NE(json.find("\"cycles\": 12345"), std::string::npos);
  EXPECT_NE(json.find("\"busy_cycles\": 999"), std::string::npos);
}

TEST(KernelStatsJsonTest, DeterministicOutput) {
  KernelStats stats;
  stats.cycles = 7;
  EXPECT_EQ(stats.toJson(), stats.toJson());
}

TEST(KernelStatsCsvTest, HeaderAndRowHaveSameFieldCount) {
  KernelStats stats;
  const std::string header = KernelStats::csvHeader();
  const std::string row = stats.csvRow();
  const auto count = [](const std::string& s) {
    size_t n = 1;
    for (char c : s) n += c == ',' ? 1 : 0;
    return n;
  };
  EXPECT_EQ(count(header), count(row));
}

}  // namespace
}  // namespace simtomp::gpusim
