// Request mixes: the recorded workload format simtomp_serve replays.
//
// A mix is a line-oriented script of tenant declarations, launch
// requests and scheduler steps:
//
//   # comment / blank lines ignored
//   tenant NAME priority=P inflight=I queued=Q [deadline=D] [retries=R]
//   req TENANT KERNEL trip=N simdlen=S [fault=SPEC] [deadline=D]
//   pump
//   drain
//
// deadline=D is a modeled-cycle budget (tenant default, or per-request
// override); retries=R caps re-dispatches after device loss. Both are
// omitted from canonical text when they hold their defaults, so mixes
// recorded before these keys existed render byte-identically. The
// parser is strict: unknown keys, malformed values and duplicate keys
// on one line are errors, so a typo cannot silently drop an SLO.
//
// KERNEL is one of the built-in regions (axpy, stencil, square) —
// small three-level kernels (teams / tiles / simd lanes) whose results
// are verifiable from the index alone. The same text replays to the
// same per-tenant statistics on any machine: generation is seeded
// (support/Rng), parsing is strict, and replay pins every fault spec
// (empty -> "off") so the SIMTOMP_FAULT environment cannot leak in.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "simserve/service.h"

namespace simtomp::simserve {

/// One mix script line (comments stripped).
struct MixOp {
  enum class Kind : uint8_t { kTenant, kRequest, kPump, kDrain };
  Kind kind = Kind::kRequest;
  // kTenant
  TenantSpec tenant;
  // kRequest
  std::string reqTenant;
  std::string kernel;
  uint64_t trip = 0;
  uint32_t simdlen = 1;
  std::string fault;  ///< SIMTOMP_FAULT grammar; "" = no fault ("off")
  /// Per-request deadline override (modeled cycles); the default
  /// inherits the tenant's deadline at submit time.
  uint64_t deadline = kInheritDeadline;
};

struct Mix {
  std::vector<MixOp> ops;

  [[nodiscard]] size_t requestCount() const;
  /// Canonical text form; parseMix(toString()) round-trips.
  [[nodiscard]] std::string toString() const;
};

/// Strict parser for the mix grammar (non-ok names the offending line).
[[nodiscard]] Result<Mix> parseMix(std::istream& in);
[[nodiscard]] Result<Mix> parseMixText(const std::string& text);

/// Knobs for the seeded generator.
struct MixProfile {
  uint64_t seed = 1;
  uint32_t tenants = 4;       ///< named t0..tN-1, priority 1 + (i % 4)
  uint32_t requests = 256;
  uint32_t pumpEvery = 64;    ///< insert pump/drain every N requests (0 = end only)
  uint32_t faultPermille = 0; ///< chance a request carries device_lost_post
  uint32_t maxInFlight = 64;
  uint32_t maxQueued = 1024;
};

/// Deterministic mix from the profile: same profile, same bytes.
[[nodiscard]] Mix generateMix(const MixProfile& profile);

/// What replayMix did (admission split, result verification).
struct ReplayReport {
  uint64_t submitted = 0;
  uint64_t admitted = 0;
  uint64_t shedAtSubmit = 0;
  uint64_t deadlineShed = 0;  ///< DEADLINE_EXCEEDED at admission
  uint64_t completed = 0;     ///< admitted requests that reached kDone
  uint64_t failed = 0;        ///< admitted requests that reached kFailed
  uint64_t verified = 0;
  uint64_t verifyFailures = 0;

  [[nodiscard]] std::string toString() const;
};

struct ReplayOptions {
  /// hostWorkers stamped on every request config (0 = runtime auto).
  uint32_t hostWorkers = 1;
  /// Watchdog budget per request (generous; faults must not hang CI).
  uint64_t watchdogSteps = 2000000;
};

/// Drive a mix through a LaunchService: register tenants, submit
/// requests (building the named kernel regions), pump/drain where the
/// script says, then runToCompletion and verify every completed
/// request's output buffer. Non-ok when the service failed or a kernel
/// produced wrong values; shed requests are expected, not errors.
[[nodiscard]] Result<ReplayReport> replayMix(LaunchService& service,
                                             const Mix& mix,
                                             const ReplayOptions& options = {});

/// The built-in kernel names, for tools that enumerate them.
[[nodiscard]] const std::vector<std::string>& mixKernelNames();

// The kernel oracle and region builder, exported for harnesses (the
// chaos campaign driver) that submit requests directly instead of
// through mix text. `kernel` indexes mixKernelNames().
/// The value kernel `kernel` writes at index i (closed form).
[[nodiscard]] uint64_t mixKernelValue(size_t kernel, uint64_t i);
/// Three-level region writing mixKernelValue(kernel, i) to (*out)[i]
/// for i < trip. `out` must have at least `trip` elements.
[[nodiscard]] omprt::TargetRegionFn makeMixRegion(
    size_t kernel, uint64_t trip, std::shared_ptr<std::vector<uint64_t>> out);

}  // namespace simtomp::simserve
