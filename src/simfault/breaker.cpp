#include "simfault/breaker.h"

namespace simtomp::simfault {

std::string_view breakerStateName(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed: return "closed";
    case BreakerState::kOpen: return "open";
    case BreakerState::kHalfOpen: return "half_open";
  }
  return "unknown";
}

void CircuitBreaker::open(uint64_t epoch) {
  state_ = BreakerState::kOpen;
  reopen_epoch_ = epoch + policy_.cooldownEpochs;
  window_.clear();
  ++opens_;
}

bool CircuitBreaker::noteTrip(uint64_t epoch) {
  ++trips_;
  if (policy_.tripThreshold == 0) return false;  // breaker disabled
  switch (state_) {
    case BreakerState::kOpen:
      // Already quarantined; stray trips (a wave can carry several
      // failures from one device) don't extend the cool-down.
      return false;
    case BreakerState::kHalfOpen:
      // The probe failed: straight back to open with a fresh cool-down.
      open(epoch);
      return true;
    case BreakerState::kClosed: {
      window_.push_back(epoch);
      // Drop trips that slid out of the window.
      const uint64_t width = policy_.windowEpochs == 0
                                 ? 1
                                 : policy_.windowEpochs;
      while (!window_.empty() && window_.front() + width <= epoch) {
        window_.pop_front();
      }
      if (window_.size() >= policy_.tripThreshold) {
        open(epoch);
        return true;
      }
      return false;
    }
  }
  return false;
}

void CircuitBreaker::onEpoch(uint64_t epoch) {
  if (state_ == BreakerState::kOpen && epoch >= reopen_epoch_) {
    state_ = BreakerState::kHalfOpen;
  }
}

void CircuitBreaker::noteProbeSuccess() {
  if (state_ != BreakerState::kHalfOpen) return;
  state_ = BreakerState::kClosed;
  window_.clear();
}

void CircuitBreaker::forceClose() {
  state_ = BreakerState::kClosed;
  window_.clear();
}

void CircuitBreaker::forceHalfOpen() { state_ = BreakerState::kHalfOpen; }

}  // namespace simtomp::simfault
