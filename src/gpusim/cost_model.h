// Cycle cost model for the SIMT simulator.
//
// The simulator is not cycle-accurate for any real GPU; it is an
// *architectural* cost model whose purpose is to preserve the relative
// performance effects the paper attributes its results to:
//
//   1. idle-lane waste   — a warp executes in lockstep, so the cost of a
//                          region is the maximum over its active lanes;
//                          lanes with no work still occupy the warp;
//   2. synchronization   — block-level barriers are much more expensive
//                          than warp-level barriers, which is why the
//                          paper's SIMD state machine (warp-level) is
//                          cheaper than the teams state machine
//                          (block-level);
//   3. memory hierarchy  — global accesses cost more than shared, which
//                          cost more than registers/local; generic-mode
//                          variable sharing moves traffic from local to
//                          shared (or global on overflow);
//   4. dispatch          — resolving an outlined region through the
//                          if-cascade of known functions is cheaper than
//                          an indirect call (paper section 5.5).
//
// Default constants below are calibrated once against the published
// shapes of paper Figs. 9 and 10 (see EXPERIMENTS.md) and then frozen;
// benches never tune them per-workload.
#pragma once

#include <cstdint>

namespace simtomp::gpusim {

/// Version of the cost-model *shape* (the set of constants below and
/// their meaning). Recorded in the simtune cache key alongside a hash
/// of the actual constant values, so recalibrating the model (changing
/// defaults, or bumping this when semantics change) invalidates every
/// cached tuning decision instead of silently ranking with stale
/// cycles (docs/COST_MODEL.md).
inline constexpr uint32_t kCostModelVersion = 1;

struct CostModel {
  // Compute.
  uint64_t aluOp = 1;          ///< one arithmetic instruction
  uint64_t fmaOp = 2;          ///< fused multiply-add (double)
  uint64_t divergeBranch = 2;  ///< taking a data-dependent branch

  // Memory (amortized per-access costs, charged to the issuing lane).
  uint64_t globalAccess = 16;  ///< global load/store
  uint64_t sharedAccess = 4;   ///< shared-memory load/store
  uint64_t localAccess = 1;    ///< register/local access
  uint64_t atomicRmw = 48;     ///< global atomic read-modify-write

  // Synchronization.
  uint64_t warpSync = 6;     ///< __syncwarp(mask)-style barrier
  uint64_t blockSync = 48;   ///< __syncthreads()-style barrier
  uint64_t statePoll = 4;    ///< one pass through a state-machine loop

  // Runtime bookkeeping.
  uint64_t payloadArgCopy = 2;    ///< packing/unpacking one captured arg
  uint64_t dispatchCascade = 4;   ///< outlined fn found in the if-cascade
  uint64_t dispatchIndirect = 24; ///< fallback indirect call
  uint64_t kernelLaunch = 600;    ///< fixed per-kernel launch latency

  /// Uniform scale knob used by tests to verify cost plumbing.
  [[nodiscard]] CostModel scaled(uint64_t factor) const {
    CostModel c = *this;
    c.aluOp *= factor;
    c.fmaOp *= factor;
    c.divergeBranch *= factor;
    c.globalAccess *= factor;
    c.sharedAccess *= factor;
    c.localAccess *= factor;
    c.atomicRmw *= factor;
    c.warpSync *= factor;
    c.blockSync *= factor;
    c.statePoll *= factor;
    c.payloadArgCopy *= factor;
    c.dispatchCascade *= factor;
    c.dispatchIndirect *= factor;
    c.kernelLaunch *= factor;
    return c;
  }
};

}  // namespace simtomp::gpusim
