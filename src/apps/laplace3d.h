// laplace3d (paper section 6.4): 3-D heat-diffusion (Jacobi) kernel
// with three parallelizable loops, used to measure the cost of the
// different SIMD execution modes rather than a SIMD speedup.
//
// Parallelization: the (i,j) plane loops are collapsed onto
// `teams distribute parallel for`; the k line loop is the simd level
// (or a serial loop in the No-SIMD baseline). The SIMD group size is 32
// for all Fig. 10 measurements, with teams regions always SPMD.
#pragma once

#include <cstdint>
#include <vector>

#include "apps/common.h"
#include "gpusim/device.h"
#include "support/status.h"

namespace simtomp::apps {

struct Laplace3dWorkload {
  uint32_t nx = 34;  ///< grid points incl. boundary
  uint32_t ny = 34;
  uint32_t nz = 34;  ///< fastest (simd) dimension
  std::vector<double> u;  ///< nx*ny*nz, row-major (i*ny + j)*nz + k
};

/// Cubic convenience (n^3).
Laplace3dWorkload generateLaplace3d(uint32_t n, uint64_t seed);
/// General grid; real heat-diffusion grids are often long in the
/// fastest dimension, which is what amortizes per-loop simd overhead.
Laplace3dWorkload generateLaplace3d(uint32_t nx, uint32_t ny, uint32_t nz,
                                    uint64_t seed);

/// One Jacobi sweep on the host (interior points only).
std::vector<double> laplace3dReference(const Laplace3dWorkload& w);

struct Laplace3dOptions {
  SimdMode mode = SimdMode::kNoSimd;
  uint32_t numTeams = 32;
  uint32_t threadsPerTeam = 128;
  uint32_t simdlen = 32;  ///< used by the two SIMD modes
};

Result<AppRunResult> runLaplace3d(gpusim::Device& device,
                                  const Laplace3dWorkload& w,
                                  const Laplace3dOptions& options);

}  // namespace simtomp::apps
