// Asynchronous target tasks (extension; Tian et al. [26]).
//
// `#pragma omp target nowait` creates a deferred target task that a
// hidden helper thread executes while the host thread continues. This
// module provides that machinery: a TargetTaskQueue owning one helper
// thread; enqueue() returns a future for the kernel's stats, and
// drain() gives taskwait semantics.
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>

#include "gpusim/device.h"
#include "omprt/target.h"
#include "support/status.h"

namespace simtomp::hostrt {

class TargetTaskQueue {
 public:
  explicit TargetTaskQueue(gpusim::Device& device);
  ~TargetTaskQueue();

  TargetTaskQueue(const TargetTaskQueue&) = delete;
  TargetTaskQueue& operator=(const TargetTaskQueue&) = delete;

  /// Enqueue a deferred target region (`target nowait`).
  ///
  /// Producer contract: enqueue() is safe from any number of threads
  /// concurrently (the queue mutex serializes submissions; FIFO order
  /// is the mutex acquisition order). simserve's LaunchService relies
  /// on this — it feeds one device queue from its pump path while the
  /// owning host thread may still be enqueueing `target nowait` tasks.
  std::future<Result<gpusim::KernelStats>> enqueue(
      omprt::TargetConfig config, omprt::TargetRegionFn region);

  /// Block until every task enqueued *before this call* has completed
  /// (`taskwait`). Tasks enqueued concurrently with — or after — the
  /// drain are not waited for: drain snapshots the enqueue counter
  /// under the queue mutex and waits for the retire counter to reach
  /// it, so a racing producer can neither wedge the drain forever nor
  /// make it return while a pre-drain task is still in flight.
  void drain();

  /// Tasks not yet retired: the queued tasks *plus* the one the helper
  /// thread is currently executing. The in-flight task counts until the
  /// helper retires it, so pendingTasks() == 0 holds exactly when
  /// drain() would not block — but a task whose future is already
  /// ready may still be counted for the instant between set_value and
  /// retirement. Use completedTasks() to observe task completion, and
  /// the returned future to observe a specific task's result.
  [[nodiscard]] size_t pendingTasks() const;
  [[nodiscard]] uint64_t completedTasks() const {
    return completed_.load(std::memory_order_acquire);
  }
  /// Tasks ever submitted (monotonic; enqueued - completed = pending).
  [[nodiscard]] uint64_t enqueuedTasks() const;

 private:
  struct Task {
    omprt::TargetConfig config;
    omprt::TargetRegionFn region;
    std::promise<Result<gpusim::KernelStats>> promise;
  };

  void helperLoop();

  gpusim::Device* device_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::deque<Task> queue_;
  bool shutdown_ = false;
  bool busy_ = false;
  uint64_t enqueued_ = 0;                 ///< guarded by mutex_
  std::atomic<uint64_t> completed_{0};    ///< written under mutex_
  std::thread helper_;
};

}  // namespace simtomp::hostrt
