// Shared helpers for the benchmark harnesses.
//
// The metric of interest is *simulated device cycles*, not host wall
// time, so every benchmark runs its kernel once and reports cycles (and
// derived speedups) through google-benchmark counters. Each binary also
// prints a paper-style summary table so the series can be compared to
// the corresponding figure directly (see EXPERIMENTS.md).
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "gpusim/stats.h"
#include "support/status.h"

namespace simtomp::bench {

/// One printed row: label + cycles + speedup vs the series baseline.
struct Row {
  std::string label;
  uint64_t cycles = 0;
  double speedup = 1.0;
};

inline void printTable(const char* title, const char* baseline_label,
                       uint64_t baseline_cycles,
                       const std::vector<Row>& rows) {
  std::printf("\n=== %s ===\n", title);
  std::printf("%-28s %14s %10s\n", "configuration", "sim cycles", "speedup");
  std::printf("%-28s %14llu %10s\n", baseline_label,
              static_cast<unsigned long long>(baseline_cycles), "1.00x");
  for (const Row& row : rows) {
    std::printf("%-28s %14llu %9.2fx\n", row.label.c_str(),
                static_cast<unsigned long long>(row.cycles), row.speedup);
  }
  std::fflush(stdout);
}

/// Abort the benchmark binary on a failed run — a bench that silently
/// reports garbage is worse than one that fails loudly.
template <typename T>
const T& checkOk(const Result<T>& result, const char* what) {
  if (!result.isOk()) {
    std::fprintf(stderr, "FATAL: %s failed: %s\n", what,
                 result.status().toString().c_str());
    std::abort();
  }
  return result.value();
}

inline void checkVerified(bool verified, const char* what) {
  if (!verified) {
    std::fprintf(stderr, "FATAL: %s failed verification\n", what);
    std::abort();
  }
}

}  // namespace simtomp::bench
