// Unit tests for the loop IR layer: canonical loops, collapsing,
// outlining/payload packing, globalization, and the IR builder facade.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <vector>

#include "loopir/builder.h"
#include "loopir/canonical_loop.h"
#include "loopir/globalize.h"
#include "loopir/outline.h"
#include "omprt/target.h"

namespace simtomp::loopir {
namespace {

using gpusim::ArchSpec;
using gpusim::Counter;
using gpusim::Device;
using omprt::ExecMode;
using omprt::OmpContext;
using omprt::TargetConfig;

// ---------------- CanonicalLoop ----------------

TEST(CanonicalLoopTest, SimpleUpCount) {
  auto loop = CanonicalLoop::make(0, 10, 1);
  ASSERT_TRUE(loop.isOk());
  EXPECT_EQ(loop.value().tripCount(), 10u);
  EXPECT_EQ(loop.value().ivAt(0), 0);
  EXPECT_EQ(loop.value().ivAt(9), 9);
}

TEST(CanonicalLoopTest, StridedUpCount) {
  auto loop = CanonicalLoop::make(3, 20, 4);  // 3,7,11,15,19
  ASSERT_TRUE(loop.isOk());
  EXPECT_EQ(loop.value().tripCount(), 5u);
  EXPECT_EQ(loop.value().ivAt(4), 19);
}

TEST(CanonicalLoopTest, DownCount) {
  auto loop = CanonicalLoop::make(10, 0, -2);  // 10,8,6,4,2
  ASSERT_TRUE(loop.isOk());
  EXPECT_EQ(loop.value().tripCount(), 5u);
  EXPECT_EQ(loop.value().ivAt(0), 10);
  EXPECT_EQ(loop.value().ivAt(4), 2);
}

TEST(CanonicalLoopTest, EmptyRanges) {
  EXPECT_EQ(CanonicalLoop::make(5, 5, 1).value().tripCount(), 0u);
  EXPECT_EQ(CanonicalLoop::make(5, 3, 1).value().tripCount(), 0u);
  EXPECT_EQ(CanonicalLoop::make(3, 5, -1).value().tripCount(), 0u);
}

TEST(CanonicalLoopTest, ZeroStepRejected) {
  EXPECT_FALSE(CanonicalLoop::make(0, 10, 0).isOk());
}

TEST(CanonicalLoopTest, NegativeBounds) {
  auto loop = CanonicalLoop::make(-10, -4, 2);  // -10,-8,-6
  ASSERT_TRUE(loop.isOk());
  EXPECT_EQ(loop.value().tripCount(), 3u);
  EXPECT_EQ(loop.value().ivAt(2), -6);
}

TEST(CanonicalLoopTest, UpToConvenience) {
  const CanonicalLoop loop = CanonicalLoop::upTo(7);
  EXPECT_EQ(loop.tripCount(), 7u);
  EXPECT_EQ(loop.ivAt(6), 6);
}

TEST(CollapsedLoop2Test, TripAndIvDecomposition) {
  const CollapsedLoop2 nest(CanonicalLoop::make(0, 3, 1).value(),
                            CanonicalLoop::make(10, 40, 10).value());
  EXPECT_EQ(nest.tripCount(), 9u);
  EXPECT_EQ(nest.ivsAt(0), (std::pair<int64_t, int64_t>{0, 10}));
  EXPECT_EQ(nest.ivsAt(5), (std::pair<int64_t, int64_t>{1, 30}));
  EXPECT_EQ(nest.ivsAt(8), (std::pair<int64_t, int64_t>{2, 30}));
}

TEST(CollapsedLoop2Test, CoversFullCrossProduct) {
  const CollapsedLoop2 nest(CanonicalLoop::make(0, 4, 1).value(),
                            CanonicalLoop::make(0, 5, 1).value());
  std::set<std::pair<int64_t, int64_t>> seen;
  for (uint64_t l = 0; l < nest.tripCount(); ++l) seen.insert(nest.ivsAt(l));
  EXPECT_EQ(seen.size(), 20u);
}

// ---------------- Outlining / ArgPack ----------------

TargetConfig spmdConfig(uint32_t threads = 32) {
  TargetConfig config;
  config.teamsMode = ExecMode::kSPMD;
  config.numTeams = 1;
  config.threadsPerTeam = threads;
  return config;
}

TEST(OutlineTest, ArgPackChargesPerArg) {
  Device dev(ArchSpec::testTiny());
  auto stats = omprt::launchTarget(
      dev, spmdConfig(32), [&](OmpContext& ctx) {
        int a = 0;
        double b = 0;
        ArgPack pack = ArgPack::of(ctx, a, b);
        EXPECT_EQ(pack.size(), 2u);
        EXPECT_EQ(pack.data()[0], &a);
        EXPECT_EQ(pack.data()[1], &b);
      });
  ASSERT_TRUE(stats.isOk());
  EXPECT_EQ(stats.value().counters.get(Counter::kPayloadArgCopy), 64u);
}

TEST(OutlineTest, ArgAsRecoversTypedReference) {
  int x = 41;
  void* args[] = {&x};
  argAs<int>(args, 0) += 1;
  EXPECT_EQ(x, 42);
}

TEST(OutlineTest, LoopTrampolineInvokesBodyWithIv) {
  Device dev(ArchSpec::testTiny());
  std::vector<std::atomic<int>> hits(16);
  auto stats = omprt::launchTarget(
      dev, spmdConfig(32), [&](OmpContext& ctx) {
        auto body = [&hits](OmpContext&, uint64_t iv) { hits[iv]++; };
        auto outlined = outlineLoop(ctx, body, /*registerInCascade=*/false);
        // Invoke the trampoline directly, as the runtime would.
        for (uint64_t iv = 0; iv < 16; ++iv) {
          if (ctx.gpu().threadId() == 0) {
            outlined.fn(ctx, iv, outlined.payload.data());
          }
        }
      });
  ASSERT_TRUE(stats.isOk());
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(OutlineTest, ExtraVarsTravelInPayload) {
  Device dev(ArchSpec::testTiny());
  int seen = 0;
  auto stats = omprt::launchTarget(
      dev, spmdConfig(32), [&](OmpContext& ctx) {
        if (ctx.gpu().threadId() != 0) return;
        int shared_var = 7;
        auto body = [](OmpContext&, uint64_t, void** rest) {
          argAs<int>(rest, 0) *= 6;
        };
        auto outlined = outlineLoop(ctx, body, false, shared_var);
        outlined.fn(ctx, 0, outlined.payload.data());
        seen = shared_var;
      });
  ASSERT_TRUE(stats.isOk());
  EXPECT_EQ(seen, 42);
}

TEST(OutlineTest, RegistrationAddsToGlobalCascade) {
  omprt::Dispatcher::global().clear();
  Device dev(ArchSpec::testTiny());
  auto stats = omprt::launchTarget(
      dev, spmdConfig(32), [&](OmpContext& ctx) {
        auto body = [](OmpContext&, uint64_t) {};
        auto outlined = outlineLoop(ctx, body, /*registerInCascade=*/true);
        EXPECT_TRUE(omprt::Dispatcher::global().isKnown(
            reinterpret_cast<const void*>(outlined.fn)));
      });
  ASSERT_TRUE(stats.isOk());
  omprt::Dispatcher::global().clear();
}

TEST(OutlineTest, RegionTrampolineRuns) {
  Device dev(ArchSpec::testTiny());
  std::atomic<int> runs{0};
  auto stats = omprt::launchTarget(
      dev, spmdConfig(32), [&](OmpContext& ctx) {
        auto region = [&runs](OmpContext&) { runs++; };
        auto outlined = outlineRegion(ctx, region, false);
        outlined.fn(ctx, outlined.payload.data());
      });
  ASSERT_TRUE(stats.isOk());
  EXPECT_EQ(runs.load(), 32);
}

// ---------------- Globalizer ----------------

TEST(GlobalizerTest, PromotesToSharedMemoryAndReleases) {
  Device dev(ArchSpec::testTiny());
  auto stats = omprt::launchTarget(
      dev, spmdConfig(32), [&](OmpContext& ctx) {
        if (ctx.gpu().threadId() != 0) return;
        gpusim::SharedMemory& shared = ctx.gpu().block().sharedMemory();
        const size_t used_before = shared.used();
        {
          Globalizer globalizer(ctx);
          double local = 3.25;
          double* promoted = globalizer.globalize(local);
          ASSERT_NE(promoted, nullptr);
          EXPECT_EQ(*promoted, 3.25);
          EXPECT_NE(promoted, &local);
          EXPECT_GT(shared.used(), used_before);
          EXPECT_EQ(globalizer.promotedCount(), 1u);
          EXPECT_EQ(globalizer.overflowCount(), 0u);
        }
        EXPECT_EQ(shared.used(), used_before);  // released at region end
      });
  ASSERT_TRUE(stats.isOk());
}

TEST(GlobalizerTest, ChargesSharedStores) {
  Device dev(ArchSpec::testTiny());
  uint64_t stores = 0;
  auto stats = omprt::launchTarget(
      dev, spmdConfig(32), [&](OmpContext& ctx) {
        if (ctx.gpu().threadId() != 0) return;
        const uint64_t before =
            ctx.gpu().counters().get(Counter::kSharedStore);
        Globalizer globalizer(ctx);
        struct Big {
          double values[8];
        } big{};
        globalizer.globalize(big);
        stores = ctx.gpu().counters().get(Counter::kSharedStore) - before;
      });
  ASSERT_TRUE(stats.isOk());
  EXPECT_EQ(stores, 8u);  // one store per 8 bytes
}

TEST(GlobalizerTest, OverflowsToGlobalWhenScratchpadFull) {
  Device dev(ArchSpec::testTiny());
  auto stats = omprt::launchTarget(
      dev, spmdConfig(32), [&](OmpContext& ctx) {
        if (ctx.gpu().threadId() != 0) return;
        gpusim::SharedMemory& shared = ctx.gpu().block().sharedMemory();
        // Exhaust the scratchpad first.
        while (shared.allocate(1024, 8) != nullptr) {
        }
        Globalizer globalizer(ctx);
        std::vector<std::byte> big(2048);
        void* promoted = globalizer.globalizeBytes(big.data(), big.size(), 8);
        ASSERT_NE(promoted, nullptr);
        EXPECT_EQ(globalizer.overflowCount(), 1u);
        EXPECT_GT(ctx.gpu().counters().get(Counter::kGlobalAlloc), 0u);
      });
  ASSERT_TRUE(stats.isOk());
}

TEST(GlobalizerTest, ReadBackCopiesAndCharges) {
  Device dev(ArchSpec::testTiny());
  auto stats = omprt::launchTarget(
      dev, spmdConfig(32), [&](OmpContext& ctx) {
        if (ctx.gpu().threadId() != 0) return;
        Globalizer globalizer(ctx);
        double local = 1.0;
        double* promoted = globalizer.globalize(local);
        *promoted = 9.0;  // loop wrote through the promoted copy
        globalizer.readBack(local, promoted);
        EXPECT_EQ(local, 9.0);
        EXPECT_GT(ctx.gpu().counters().get(Counter::kSharedLoad), 0u);
      });
  ASSERT_TRUE(stats.isOk());
}

// ---------------- IrBuilder facade ----------------

TEST(IrBuilderTest, SimdLoopThroughBuilder) {
  Device dev(ArchSpec::testTiny());
  std::vector<std::atomic<int>> hits(24);
  auto stats = omprt::launchTarget(
      dev, spmdConfig(64), [&](OmpContext& ctx) {
        omprt::rt::parallel(
            ctx,
            +[](OmpContext& inner, void** args) {
              auto* h = static_cast<std::vector<std::atomic<int>>*>(args[0]);
              IrBuilder::createWorkshareLoop(
                  inner, WorkshareKind::kSimd,
                  [](OmpContext&) -> uint64_t { return 24; },
                  [h](OmpContext&, uint64_t iv) { (*h)[iv]++; });
            },
            [&] {
              static void* args_storage[1];
              args_storage[0] = &hits;
              return args_storage;
            }(),
            1, {ExecMode::kGeneric, 8});
      });
  ASSERT_TRUE(stats.isOk());
  for (auto& h : hits) EXPECT_EQ(h.load(), 8);  // once per group
}

TEST(IrBuilderTest, CanonicalLoopDenormalizesIvs) {
  Device dev(ArchSpec::testTiny());
  std::set<int64_t> seen;
  auto stats = omprt::launchTarget(
      dev, spmdConfig(32), [&](OmpContext& ctx) {
        if (ctx.gpu().threadId() != 0) return;
        const CanonicalLoop loop = CanonicalLoop::make(10, 0, -3).value();
        IrBuilder::createWorkshareLoop(
            ctx, WorkshareKind::kDistribute, loop,
            [&seen](OmpContext&, int64_t iv) { seen.insert(iv); });
      });
  ASSERT_TRUE(stats.isOk());
  EXPECT_EQ(seen, (std::set<int64_t>{10, 7, 4, 1}));
}

TEST(IrBuilderTest, DistributeSplitsAcrossTeams) {
  Device dev(ArchSpec::testTiny());
  std::vector<std::atomic<int>> hits(30);
  auto stats = omprt::launchTarget(
      dev, [&] {
        TargetConfig c = spmdConfig(32);
        c.numTeams = 4;
        return c;
      }(), [&](OmpContext& ctx) {
        if (ctx.gpu().threadId() != 0) return;  // one lane per team
        IrBuilder::createWorkshareLoop(
            ctx, WorkshareKind::kDistribute,
            [](OmpContext&) -> uint64_t { return 30; },
            [&hits](OmpContext&, uint64_t iv) { hits[iv]++; });
      });
  ASSERT_TRUE(stats.isOk());
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

}  // namespace
}  // namespace simtomp::loopir
