// Outlining: turning loop bodies and parallel regions into raw function
// pointers plus packed argument payloads (paper sections 4.1-4.2).
//
// The paper's code generation isolates a loop body into a separate
// function ("loop task") and aggregates every referenced variable into
// a structure passed as a single payload. We reproduce that contract
// with C++: the outlined function is a stateless trampoline (a true
// function pointer, as the runtime's dispatch cascade requires) and the
// payload is a void* array whose slot 0 holds the callable object and
// whose remaining slots hold the explicitly shared variables.
//
// Two usage styles:
//   * raw style — apps write `static void body(OmpContext&, uint64_t,
//     void**)` functions and pack args with ArgPack, mirroring what
//     Clang emits;
//   * lambda style — outlineLoop()/outlineRegion() wrap a callable and
//     register its trampoline in the dispatch cascade.
#pragma once

#include <array>
#include <cstdint>
#include <type_traits>

#include "omprt/context.h"
#include "omprt/dispatcher.h"
#include "omprt/modes.h"
#include "omprt/runtime.h"
#include "support/status.h"

namespace simtomp::loopir {

/// Typed access to one payload slot.
template <typename T>
[[nodiscard]] T& argAs(void** args, size_t index) {
  return *static_cast<T*>(args[index]);
}

/// Fixed-capacity argument payload. Packing charges the per-argument
/// payload cost the paper's runtime pays when marshalling captured
/// variables.
class ArgPack {
 public:
  static constexpr size_t kMaxArgs = 64;

  ArgPack() = default;

  template <typename... Vars>
  static ArgPack of(omprt::OmpContext& ctx, Vars&... vars) {
    static_assert(sizeof...(Vars) <= kMaxArgs, "too many payload args");
    ArgPack pack;
    (pack.push(ctx, &vars), ...);
    return pack;
  }

  void push(omprt::OmpContext& ctx, void* ptr) {
    SIMTOMP_CHECK(size_ < kMaxArgs, "ArgPack overflow");
    slots_[size_++] = ptr;
    ctx.gpu().charge(gpusim::Counter::kPayloadArgCopy,
                     ctx.gpu().cost().payloadArgCopy);
  }

  [[nodiscard]] void** data() { return slots_.data(); }
  [[nodiscard]] uint32_t size() const { return static_cast<uint32_t>(size_); }

 private:
  std::array<void*, kMaxArgs> slots_{};
  size_t size_ = 0;
};

namespace detail {

template <typename Body>
struct LoopTrampoline {
  static void invoke(omprt::OmpContext& ctx, uint64_t iv, void** args) {
    auto* body = static_cast<Body*>(args[0]);
    if constexpr (std::is_invocable_v<Body&, omprt::OmpContext&, uint64_t,
                                      void**>) {
      (*body)(ctx, iv, args + 1);
    } else {
      static_assert(std::is_invocable_v<Body&, omprt::OmpContext&, uint64_t>,
                    "loop body must be callable as (OmpContext&, uint64_t "
                    "[, void**])");
      (*body)(ctx, iv);
    }
  }
};

template <typename Body>
struct ReduceTrampoline {
  static double invoke(omprt::OmpContext& ctx, uint64_t iv, void** args) {
    auto* body = static_cast<Body*>(args[0]);
    if constexpr (std::is_invocable_r_v<double, Body&, omprt::OmpContext&,
                                        uint64_t, void**>) {
      return (*body)(ctx, iv, args + 1);
    } else {
      static_assert(
          std::is_invocable_r_v<double, Body&, omprt::OmpContext&, uint64_t>,
          "reduce body must return double and take (OmpContext&, uint64_t "
          "[, void**])");
      return (*body)(ctx, iv);
    }
  }
};

template <typename Region>
struct RegionTrampoline {
  static void invoke(omprt::OmpContext& ctx, void** args) {
    auto* region = static_cast<Region*>(args[0]);
    if constexpr (std::is_invocable_v<Region&, omprt::OmpContext&, void**>) {
      (*region)(ctx, args + 1);
    } else {
      static_assert(std::is_invocable_v<Region&, omprt::OmpContext&>,
                    "region must be callable as (OmpContext& [, void**])");
      (*region)(ctx);
    }
  }
};

}  // namespace detail

/// An outlined loop task: trampoline function pointer + payload whose
/// slot 0 is the body object, followed by `extraVars`.
template <typename Body>
struct OutlinedLoop {
  omprt::LoopBodyFn fn;
  ArgPack payload;
};

/// Outline a loop body. `registerInCascade` mirrors whether the region
/// is known to the translation unit's if-cascade (paper section 5.5).
template <typename Body, typename... Vars>
OutlinedLoop<Body> outlineLoop(omprt::OmpContext& ctx, Body& body,
                               bool registerInCascade, Vars&... vars) {
  OutlinedLoop<Body> out{&detail::LoopTrampoline<Body>::invoke, {}};
  if (registerInCascade) {
    omprt::Dispatcher::global().registerOutlined(
        reinterpret_cast<const void*>(out.fn));
  }
  out.payload.push(ctx, &body);
  (out.payload.push(ctx, &vars), ...);
  return out;
}

template <typename Body>
struct OutlinedReduceLoop {
  omprt::rt::ReduceBodyF64 fn;
  ArgPack payload;
};

template <typename Body, typename... Vars>
OutlinedReduceLoop<Body> outlineReduceLoop(omprt::OmpContext& ctx, Body& body,
                                           bool registerInCascade,
                                           Vars&... vars) {
  OutlinedReduceLoop<Body> out{&detail::ReduceTrampoline<Body>::invoke, {}};
  if (registerInCascade) {
    omprt::Dispatcher::global().registerOutlined(
        reinterpret_cast<const void*>(out.fn));
  }
  out.payload.push(ctx, &body);
  (out.payload.push(ctx, &vars), ...);
  return out;
}

template <typename Region>
struct OutlinedRegion {
  omprt::OutlinedFn fn;
  ArgPack payload;
};

template <typename Region, typename... Vars>
OutlinedRegion<Region> outlineRegion(omprt::OmpContext& ctx, Region& region,
                                     bool registerInCascade, Vars&... vars) {
  OutlinedRegion<Region> out{&detail::RegionTrampoline<Region>::invoke, {}};
  if (registerInCascade) {
    omprt::Dispatcher::global().registerOutlined(
        reinterpret_cast<const void*>(out.fn));
  }
  out.payload.push(ctx, &region);
  (out.payload.push(ctx, &vars), ...);
  return out;
}

}  // namespace simtomp::loopir
