// Convergence fast path (DESIGN.md §3.6): body classification, batched
// execution equivalence, the per-block arena, and the dispatcher's
// per-thread lookup cache.
//
// The load-bearing contract: for ANY combination of fast path on/off,
// host worker count, checking on/off and profiling on/off, a launch
// produces bit-identical KernelStats, check reports and profiles — the
// fast path buys host wall-time only. Classification must reject every
// hazard class (divergent branch, barrier, cross-lane op, atomic), and
// a false dsl::convergent promise must fail the launch loudly rather
// than corrupt modeled results.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "apps/common.h"
#include "apps/csr.h"
#include "apps/ideal_kernel.h"
#include "apps/sparse_matvec.h"
#include "dsl/dsl.h"
#include "omprt/convergence.h"
#include "omprt/dispatcher.h"
#include "omprt/runtime.h"
#include "omprt/target.h"
#include "support/arena.h"

namespace simtomp {
namespace {

using gpusim::ArchSpec;
using gpusim::Device;
using gpusim::GlobalSpan;
using gpusim::KernelStats;
using omprt::ConvergenceCache;
using omprt::ExecMode;
using omprt::FastPathMode;
using omprt::OmpContext;
using Verdict = ConvergenceCache::Verdict;

// ---------------------------------------------------------------------
// ConvergenceCache unit tests
// ---------------------------------------------------------------------

TEST(ConvergenceCacheTest, ProbePromotionNeedsFullGroup) {
  ConvergenceCache& cache = ConvergenceCache::global();
  cache.clearForTest();
  const void* fn = reinterpret_cast<const void*>(uintptr_t{0x1000});
  EXPECT_EQ(cache.lookup(fn), Verdict::kUnknown);
  for (uint32_t lane = 0; lane < 7; ++lane) {
    cache.reportProbe(fn, /*clean=*/true, /*group_size=*/8);
    EXPECT_EQ(cache.lookup(fn), Verdict::kUnknown) << "lane " << lane;
  }
  cache.reportProbe(fn, /*clean=*/true, /*group_size=*/8);
  EXPECT_EQ(cache.lookup(fn), Verdict::kEligible);
  cache.clearForTest();
}

TEST(ConvergenceCacheTest, OneDirtyReportRejectsForever) {
  ConvergenceCache& cache = ConvergenceCache::global();
  cache.clearForTest();
  const void* fn = reinterpret_cast<const void*>(uintptr_t{0x2000});
  cache.reportProbe(fn, /*clean=*/true, /*group_size=*/4);
  cache.reportProbe(fn, /*clean=*/false, /*group_size=*/4);
  EXPECT_EQ(cache.lookup(fn), Verdict::kRejected);
  // Clean reports and declarations cannot resurrect a rejected body.
  for (uint32_t i = 0; i < 8; ++i) {
    cache.reportProbe(fn, /*clean=*/true, /*group_size=*/4);
  }
  cache.declareConvergent(fn);
  EXPECT_EQ(cache.lookup(fn), Verdict::kRejected);
  cache.clearForTest();
}

TEST(ConvergenceCacheTest, DeclarationTrustedImmediately) {
  ConvergenceCache& cache = ConvergenceCache::global();
  cache.clearForTest();
  const void* fn = reinterpret_cast<const void*>(uintptr_t{0x3000});
  cache.declareConvergent(fn);
  EXPECT_EQ(cache.lookup(fn), Verdict::kDeclared);
  cache.clearForTest();
}

// ---------------------------------------------------------------------
// Body classification: every hazard class must reject
// ---------------------------------------------------------------------

constexpr uint32_t kGroup = 8;
constexpr uint64_t kTrip = kGroup;  // one iteration per lane: barrier and
                                    // cross-lane bodies stay convergent
                                    // on the lane-per-fiber path

void cleanBody(OmpContext& ctx, uint64_t, void**) { ctx.gpu().fma(); }

void divergentBody(OmpContext& ctx, uint64_t, void**) {
  ctx.gpu().branch();
  ctx.gpu().fma();
}

void atomicBody(OmpContext& ctx, uint64_t, void**) {
  ctx.gpu().chargeAtomic();
}

void barrierBody(OmpContext& ctx, uint64_t, void**) {
  omprt::rt::syncSimdGroup(ctx);
  ctx.gpu().fma();
}

void crossLaneBody(OmpContext& ctx, uint64_t, void**) {
  (void)omprt::rt::simdReduceAdd(ctx, 1.0);
}

omprt::LoopBodyFn g_body = nullptr;

void simdRegion(OmpContext& ctx, void** args) {
  omprt::rt::simd(ctx, g_body, kTrip, args, 0);
}

KernelStats runBodyKernel(omprt::LoopBodyFn body, FastPathMode fast) {
  g_body = body;
  Device dev(ArchSpec::testTiny());
  omprt::TargetConfig config;
  config.teamsMode = ExecMode::kSPMD;
  config.numTeams = 2;
  config.threadsPerTeam = 32;
  config.fastPath = fast;
  void* args[] = {nullptr};
  auto stats = launchTarget(dev, config, [&](OmpContext& ctx) {
    omprt::rt::parallel(ctx, &simdRegion, args, 1, {ExecMode::kSPMD, kGroup});
  });
  EXPECT_TRUE(stats.isOk()) << stats.status().toString();
  return stats.isOk() ? stats.value() : KernelStats{};
}

void expectRejectedAndIdentical(omprt::LoopBodyFn body, const char* what) {
  ConvergenceCache::global().clearForTest();
  const KernelStats off = runBodyKernel(body, FastPathMode::kOff);
  // First fast-enabled launch probes; the hazard must reject the body.
  const KernelStats probed = runBodyKernel(body, FastPathMode::kOn);
  EXPECT_EQ(ConvergenceCache::global().lookup(
                reinterpret_cast<const void*>(body)),
            Verdict::kRejected)
      << what;
  // Later fast-enabled launches take the slow path; stats never move.
  const KernelStats after = runBodyKernel(body, FastPathMode::kOn);
  EXPECT_EQ(probed.toJson(), off.toJson()) << what << " (probe launch)";
  EXPECT_EQ(after.toJson(), off.toJson()) << what << " (rejected launch)";
  ConvergenceCache::global().clearForTest();
}

TEST(BodyClassificationTest, DivergentBranchRejects) {
  expectRejectedAndIdentical(&divergentBody, "divergent branch");
}

TEST(BodyClassificationTest, AtomicRejects) {
  expectRejectedAndIdentical(&atomicBody, "atomic RMW");
}

TEST(BodyClassificationTest, BarrierRejects) {
  expectRejectedAndIdentical(&barrierBody, "simd-group barrier");
}

TEST(BodyClassificationTest, CrossLaneOpRejects) {
  expectRejectedAndIdentical(&crossLaneBody, "cross-lane reduce");
}

TEST(BodyClassificationTest, CleanBodyProbePromotes) {
  ConvergenceCache::global().clearForTest();
  const KernelStats off = runBodyKernel(&cleanBody, FastPathMode::kOff);
  const KernelStats probed = runBodyKernel(&cleanBody, FastPathMode::kOn);
  EXPECT_EQ(ConvergenceCache::global().lookup(
                reinterpret_cast<const void*>(&cleanBody)),
            Verdict::kEligible);
  const KernelStats batched = runBodyKernel(&cleanBody, FastPathMode::kOn);
  EXPECT_EQ(probed.toJson(), off.toJson());
  EXPECT_EQ(batched.toJson(), off.toJson());
  ConvergenceCache::global().clearForTest();
}

TEST(BodyClassificationTest, FalseConvergentPromiseFailsLoudly) {
  ConvergenceCache::global().clearForTest();
  // Off-path launch works: the body is merely slow, not wrong.
  (void)runBodyKernel(&atomicBody, FastPathMode::kOff);

  // Declaring it convergent is a lie; the batched runner's hazard guard
  // must fail the launch rather than silently skew modeled results.
  ConvergenceCache::global().declareConvergent(
      reinterpret_cast<const void*>(&atomicBody));
  g_body = &atomicBody;
  Device dev(ArchSpec::testTiny());
  omprt::TargetConfig config;
  config.teamsMode = ExecMode::kSPMD;
  config.numTeams = 1;
  config.threadsPerTeam = 32;
  config.fastPath = FastPathMode::kOn;
  void* args[] = {nullptr};
  auto stats = launchTarget(dev, config, [&](OmpContext& ctx) {
    omprt::rt::parallel(ctx, &simdRegion, args, 1, {ExecMode::kSPMD, kGroup});
  });
  ASSERT_FALSE(stats.isOk());
  EXPECT_NE(stats.status().toString().find("hazard"), std::string::npos)
      << stats.status().toString();
  ConvergenceCache::global().clearForTest();
}

// ---------------------------------------------------------------------
// Bit-identity matrix: fast x workers x check x profile
// ---------------------------------------------------------------------

struct LaunchArtifacts {
  KernelStats stats;
  std::string checkSummary;
  uint64_t checkTotal = 0;
  std::string profileTable;
  std::vector<double> result;
};

constexpr uint64_t kRows = 192;
constexpr uint64_t kInner = 8;

/// The bench/host_throughput reduce kernel at test size: full-SPMD,
/// dsl::convergent body, fast path engaged whenever enabled.
LaunchArtifacts runConvergentReduce(FastPathMode fast, uint32_t workers,
                                    bool check, bool profile) {
  Device dev(ArchSpec::testTiny());
  const std::vector<double> host_in(kRows * kInner, 0.75);
  auto in_up = apps::toDevice<double>(dev, host_in);
  auto out_up = apps::zeroDevice<double>(dev, kRows);
  EXPECT_TRUE(in_up.isOk() && out_up.isOk());
  const GlobalSpan<double> in = in_up.value();
  const GlobalSpan<double> out = out_up.value();

  dsl::LaunchSpec spec;
  spec.numTeams = 2;
  spec.threadsPerTeam = 64;
  spec.teamsMode = ExecMode::kSPMD;
  spec.parallelMode = ExecMode::kSPMD;
  spec.simdlen = kInner;
  spec.hostWorkers = workers;
  spec.fastPath = fast;
  spec.check.mode = check ? simcheck::CheckMode::kReport
                          : simcheck::CheckMode::kOff;
  spec.profile.mode =
      profile ? simprof::ProfileMode::kOn : simprof::ProfileMode::kOff;

  auto stats = dsl::targetTeamsDistributeParallelFor(
      dev, spec, kRows, [&](OmpContext& ctx, uint64_t row) {
        const double sum = dsl::simdReduceAdd(
            ctx, kInner,
            dsl::convergent([in, row](OmpContext& inner,
                                      uint64_t k) -> double {
              gpusim::ThreadCtx& it = inner.gpu();
              const double v = in.get(it, row * kInner + k);
              it.fma();
              return v * 3.0 + 1.0;
            }));
        if (ctx.simdGroupId() == 0) out.set(ctx.gpu(), row, sum);
      });
  EXPECT_TRUE(stats.isOk()) << stats.status().toString();

  LaunchArtifacts a;
  if (stats.isOk()) a.stats = stats.value();
  if (check) {
    a.checkSummary = dev.lastCheckReport().summary();
    a.checkTotal = dev.lastCheckReport().total();
  }
  if (profile) a.profileTable = dev.lastProfile().table();
  a.result = apps::toHost(out);
  return a;
}

TEST(FastPathIdentityTest, ReduceMatrixBitIdentical) {
  ConvergenceCache::global().clearForTest();
  const LaunchArtifacts ref = runConvergentReduce(
      FastPathMode::kOff, /*workers=*/1, /*check=*/true, /*profile=*/true);
  EXPECT_EQ(ref.checkTotal, 0u) << ref.checkSummary;

  for (FastPathMode fast : {FastPathMode::kOff, FastPathMode::kOn}) {
    for (uint32_t workers : {1u, 8u}) {
      for (bool check : {false, true}) {
        for (bool profile : {false, true}) {
          const LaunchArtifacts got =
              runConvergentReduce(fast, workers, check, profile);
          const std::string tag =
              std::string("fast=") +
              (fast == FastPathMode::kOn ? "on" : "off") + " workers=" +
              std::to_string(workers) + " check=" + std::to_string(check) +
              " profile=" + std::to_string(profile);
          EXPECT_EQ(got.stats.toJson(), ref.stats.toJson()) << tag;
          EXPECT_EQ(got.result, ref.result) << tag;
          if (check) {
            EXPECT_EQ(got.checkSummary, ref.checkSummary) << tag;
            EXPECT_EQ(got.checkTotal, ref.checkTotal) << tag;
          }
          if (profile) {
            EXPECT_EQ(got.profileTable, ref.profileTable) << tag;
          }
        }
      }
    }
  }
  ConvergenceCache::global().clearForTest();
}

// ---------------------------------------------------------------------
// Apps corpus identity (fig9 kernels), fast path via SIMTOMP_FAST
// ---------------------------------------------------------------------

class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    had_ = old != nullptr;
    if (had_) saved_ = old;
    ::setenv(name, value, 1);
  }
  ~ScopedEnv() {
    if (had_) {
      ::setenv(name_, saved_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  bool had_ = false;
  std::string saved_;
};

apps::CsrMatrix smallMatrix() {
  apps::CsrGenConfig gen;
  gen.numRows = 384;
  gen.numCols = 384;
  gen.meanRowLength = 8;
  gen.maxRowLength = 48;
  gen.seed = 5;
  return apps::generateCsr(gen);
}

TEST(FastPathIdentityTest, SpmvCorpusIdenticalAcrossFastAndWorkers) {
  ConvergenceCache::global().clearForTest();
  const apps::CsrMatrix A = smallMatrix();

  for (apps::SpmvVariant variant : {apps::SpmvVariant::kThreeLevelAtomic,
                                    apps::SpmvVariant::kThreeLevelReduction}) {
    for (ExecMode parallel_mode : {ExecMode::kGeneric, ExecMode::kSPMD}) {
      apps::SpmvOptions options;
      options.variant = variant;
      options.numTeams = 8;
      options.threadsPerTeam = 64;
      options.simdlen = 8;
      options.parallelMode = parallel_mode;
      options.hostWorkers = 1;

      KernelStats ref;
      bool have_ref = false;
      for (const char* fast : {"0", "1"}) {
        for (uint32_t workers : {1u, 8u}) {
          ScopedEnv env("SIMTOMP_FAST", fast);
          options.hostWorkers = workers;
          Device dev;
          auto run = apps::runSpmv(dev, A, options);
          ASSERT_TRUE(run.isOk()) << run.status().toString();
          EXPECT_TRUE(run.value().verified);
          if (!have_ref) {
            ref = run.value().stats;
            have_ref = true;
          } else {
            EXPECT_EQ(run.value().stats.toJson(), ref.toJson())
                << "variant " << static_cast<int>(variant) << " mode "
                << static_cast<int>(parallel_mode) << " fast " << fast
                << " workers " << workers;
          }
        }
      }
    }
  }
  ConvergenceCache::global().clearForTest();
}

TEST(FastPathIdentityTest, IdealKernelIdenticalAcrossFast) {
  ConvergenceCache::global().clearForTest();
  const apps::IdealWorkload w = apps::generateIdeal(64, 32, 5);
  apps::IdealOptions options;
  options.numTeams = 4;
  options.threadsPerTeam = 64;
  options.simdlen = 8;

  KernelStats ref;
  bool have_ref = false;
  for (const char* fast : {"0", "1"}) {
    ScopedEnv env("SIMTOMP_FAST", fast);
    Device dev(ArchSpec::testTiny());
    auto run = apps::runIdeal(dev, w, options);
    ASSERT_TRUE(run.isOk()) << run.status().toString();
    EXPECT_TRUE(run.value().verified);
    if (!have_ref) {
      ref = run.value().stats;
      have_ref = true;
    } else {
      EXPECT_EQ(run.value().stats.toJson(), ref.toJson()) << "fast " << fast;
    }
  }
  ConvergenceCache::global().clearForTest();
}

// ---------------------------------------------------------------------
// Arena
// ---------------------------------------------------------------------

TEST(ArenaTest, BumpAllocationAndAlignment) {
  support::Arena arena;
  auto* a = static_cast<char*>(arena.allocate(3, 1));
  auto* b = static_cast<char*>(arena.allocate(64, 64));
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(b) % 64, 0u);
  EXPECT_EQ(arena.slabCount(), 1u);
  EXPECT_GT(arena.bytesInUse(), 0u);
}

TEST(ArenaTest, ResetRetainsCapacityAndRewinds) {
  support::Arena arena(/*slab_bytes=*/4096);
  (void)arena.allocate(3000, 8);
  (void)arena.allocate(3000, 8);  // forces a second slab
  EXPECT_GE(arena.slabCount(), 2u);
  const size_t capacity = arena.capacityBytes();
  arena.reset();
  EXPECT_EQ(arena.bytesInUse(), 0u);
  EXPECT_EQ(arena.capacityBytes(), capacity);  // slabs retained
  EXPECT_EQ(arena.resetCount(), 1u);
  // The retained slabs satisfy the same allocations without growing.
  (void)arena.allocate(3000, 8);
  (void)arena.allocate(3000, 8);
  EXPECT_EQ(arena.capacityBytes(), capacity);
}

TEST(ArenaTest, OversizedAllocationGrowsDedicatedSlab) {
  support::Arena arena(/*slab_bytes=*/4096);
  auto* p = arena.allocate(1 << 20, 16);
  ASSERT_NE(p, nullptr);
  EXPECT_GE(arena.capacityBytes(), size_t{1} << 20);
}

TEST(ArenaTest, OwnedDestructorsRunOnResetNewestFirst) {
  support::Arena arena;
  std::vector<int> order;
  struct Probe {
    std::vector<int>* order;
    int id;
    ~Probe() { order->push_back(id); }
  };
  (void)arena.createOwned<Probe>(&order, 1);
  (void)arena.createOwned<Probe>(&order, 2);
  arena.reset();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 2);  // newest first
  EXPECT_EQ(order[1], 1);
  // reset() must not re-run destructors.
  arena.reset();
  EXPECT_EQ(order.size(), 2u);
}

TEST(ArenaTest, CreateArrayValueInitializes) {
  support::Arena arena;
  uint64_t* xs = arena.createArray<uint64_t>(257);
  for (size_t i = 0; i < 257; ++i) EXPECT_EQ(xs[i], 0u) << i;
}

TEST(ArenaTest, LeasePoolRecyclesOnSameThread) {
  support::ArenaLease::drainPoolForTest();
  support::Arena* first = nullptr;
  {
    support::ArenaLease lease;
    first = &lease.arena();
    (void)lease->allocate(1024, 8);
  }
  EXPECT_EQ(support::ArenaLease::pooledCountForTest(), 1u);
  {
    support::ArenaLease lease;
    EXPECT_EQ(&lease.arena(), first);       // recycled, not rebuilt
    EXPECT_EQ(lease->bytesInUse(), 0u);     // and reset
  }
  support::ArenaLease::drainPoolForTest();
}

// ---------------------------------------------------------------------
// Dispatcher prepare() cache
// ---------------------------------------------------------------------

TEST(DispatchPlanTest, PrepareResolvesStablePositions) {
  omprt::Dispatcher dispatcher;
  int a = 0, b = 0;
  dispatcher.registerOutlined(&a);
  dispatcher.registerOutlined(&b);
  const omprt::DispatchPlan pa = dispatcher.prepare(&a);
  const omprt::DispatchPlan pb = dispatcher.prepare(&b);
  EXPECT_TRUE(pa.known);
  EXPECT_TRUE(pb.known);
  EXPECT_EQ(pa.position, 0u);
  EXPECT_EQ(pb.position, 1u);
  // Cached lookups agree with fresh ones.
  EXPECT_EQ(dispatcher.prepare(&a).position, 0u);
  int c = 0;
  EXPECT_FALSE(dispatcher.prepare(&c).known);  // misses are not cached...
  dispatcher.registerOutlined(&c);
  EXPECT_TRUE(dispatcher.prepare(&c).known);  // ...so late hits appear
  EXPECT_EQ(dispatcher.prepare(&c).position, 2u);
}

TEST(DispatchPlanTest, ClearInvalidatesThreadCache) {
  omprt::Dispatcher dispatcher;
  int a = 0;
  dispatcher.registerOutlined(&a);
  EXPECT_TRUE(dispatcher.prepare(&a).known);  // primes the TLS cache
  dispatcher.clear();
  EXPECT_FALSE(dispatcher.prepare(&a).known)
      << "stale cache entry survived clear()";
  dispatcher.registerOutlined(&a);
  EXPECT_TRUE(dispatcher.prepare(&a).known);
}

}  // namespace
}  // namespace simtomp
