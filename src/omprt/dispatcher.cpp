#include "omprt/dispatcher.h"

#include <algorithm>
#include <unordered_map>

namespace simtomp::omprt {

namespace {

// Per-host-thread cache of resolved cascade hits. Safe because the
// cascade is append-only between clear()s: once a function has a
// position, every future lookup agrees, so a stale cache can only be
// *missing* entries, never wrong ones. Keyed additionally by the
// dispatcher instance and its generation so tests that clear() or use
// private dispatchers do not see leftovers.
struct TlsDispatchCache {
  const void* owner = nullptr;
  uint64_t generation = 0;
  std::unordered_map<const void*, uint64_t> positions;
};

TlsDispatchCache& tlsCache() {
  thread_local TlsDispatchCache cache;
  return cache;
}

}  // namespace

void Dispatcher::registerOutlined(const void* fn) {
  if (fn == nullptr) return;
  {
    // Registration is idempotent and hot (outline helpers re-register
    // per call); a cached hit means this fn is already in the cascade.
    TlsDispatchCache& cache = tlsCache();
    if (cache.owner == this &&
        cache.generation == generation_.load(std::memory_order_acquire) &&
        cache.positions.count(fn) != 0) {
      return;
    }
  }
  std::unique_lock<std::shared_mutex> lock(mutex_);
  if (std::find(known_.begin(), known_.end(), fn) != known_.end()) return;
  if (known_.size() >= kMaxCascade) return;
  known_.push_back(fn);
}

void Dispatcher::clear() {
  std::unique_lock<std::shared_mutex> lock(mutex_);
  known_.clear();
  generation_.fetch_add(1, std::memory_order_acq_rel);
}

size_t Dispatcher::size() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return known_.size();
}

bool Dispatcher::isKnown(const void* fn) const { return prepare(fn).known; }

DispatchPlan Dispatcher::lookupLocked(const void* fn) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  const auto it = std::find(known_.begin(), known_.end(), fn);
  DispatchPlan plan;
  if (it != known_.end()) {
    plan.known = true;
    plan.position = static_cast<uint64_t>(std::distance(known_.begin(), it));
  }
  return plan;
}

DispatchPlan Dispatcher::prepare(const void* fn) const {
  TlsDispatchCache& cache = tlsCache();
  const uint64_t generation = generation_.load(std::memory_order_acquire);
  if (cache.owner != this || cache.generation != generation) {
    cache.owner = this;
    cache.generation = generation;
    cache.positions.clear();
  } else {
    const auto it = cache.positions.find(fn);
    if (it != cache.positions.end()) {
      return DispatchPlan{true, it->second};
    }
  }
  const DispatchPlan plan = lookupLocked(fn);
  // Only hits are cacheable: a miss can become a hit after another
  // block registers the function.
  if (plan.known) cache.positions.emplace(fn, plan.position);
  return plan;
}

Dispatcher& Dispatcher::global() {
  static Dispatcher dispatcher;
  return dispatcher;
}

}  // namespace simtomp::omprt
