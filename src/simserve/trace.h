// Request-scoped serving traces: a deterministic observability layer
// for the launch service.
//
// Every admitted request carries an implicit trace context — its id
// (the admission sequence), tenant, fingerprint and causal hop count
// across retries/migrations — and the ServiceTracer turns the
// service's decisions into a span timeline on the modeled clock:
//
//   admitted -> queued(shard) -> batched(leader/follower)
//            -> dispatched(device) -> [migrated]*
//            -> retired(status, deadline verdict)
//
// Events land in bounded simprof::FlightRecorder rings, split by
// invariance class:
//
//   canonical ring   events whose order and content are pure functions
//                    of logical state (admission order, priorities,
//                    fingerprints, modeled cycles). Its dump is a
//                    byte-compare surface: identical across reruns,
//                    SIMTOMP_HOST_WORKERS and shard counts. Device and
//                    shard identities ride along as *physical detail*
//                    that only the physical dump mode prints — they
//                    are recorded per device/shard but kept off the
//                    canonical bytes because `hash % shardCount` and
//                    the shard->device map change with the shard
//                    count.
//   physical ring    device-lifecycle events (breaker open/half-open,
//                    panic revival, manual revival) whose very
//                    existence depends on which physical device
//                    accumulated the trips. Keeping them in their own
//                    ring keeps canonical sequence numbers and ring
//                    eviction shard-invariant — one shared bounded
//                    ring would evict different canonical events for
//                    different shard counts.
//
// Tick semantics: request-scoped events carry the request's modeled
// latency so far (admitted = +0, dispatched = queue delay, each
// migration = latency including its backoff, retired = final
// latency); epoch/breaker events carry the logical epoch. Nothing
// reads a wall clock.
//
// Zero perturbation: the tracer only observes. No modeled quantity,
// tenant stat or chaos report changes with tracing on or off — the
// service never branches on tracer state beyond the `if (tracer_)`
// null checks.
//
// The flight dump is written automatically (to TraceConfig::
// autoDumpPath) on failed launches and breaker opens, and by the
// chaos harness on invariant violations; `simtomp_serve trace` prints
// the on-demand surfaces (per-request timelines, per-tenant SLO burn,
// queue-delay/batch-size histograms) and exports per-tenant Perfetto
// tracks through gpusim::TraceRecorder.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <map>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "simprof/recorder.h"
#include "support/status.h"

namespace simtomp::gpusim {
class TraceRecorder;
}  // namespace simtomp::gpusim

namespace simtomp::simserve {

/// Deadline sentinels. kNoDeadline = no budget (never shed or counted
/// against SLOs); kInheritDeadline (submit()'s default) = use the
/// tenant's TenantSpec::deadlineCycles.
inline constexpr uint64_t kNoDeadline =
    std::numeric_limits<uint64_t>::max();
inline constexpr uint64_t kInheritDeadline = kNoDeadline - 1;

/// Power-of-4 bucket histogram (4^1 .. 4^14, +Inf) mirroring the
/// simprof registry's layout, with deterministic quantile bounds.
class LatencyHistogram {
 public:
  static constexpr size_t kBuckets = 15;

  void observe(uint64_t value);

  [[nodiscard]] uint64_t count() const { return count_; }
  [[nodiscard]] uint64_t sum() const { return sum_; }
  /// Upper bound of the bucket containing the q-quantile observation
  /// (0 when empty; UINT64_MAX for the +Inf bucket).
  [[nodiscard]] uint64_t quantileUpperBound(double q) const;
  /// "count=N sum=S p50<=X p99<=Y" (X/Y print "inf" for +Inf).
  [[nodiscard]] std::string toString() const;

 private:
  std::array<uint64_t, kBuckets> buckets_{};
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
};

/// Tracing knobs on ServiceConfig. Off by default: the tracer
/// allocates per-request records and ring entries, and while it never
/// perturbs modeled stats, a service that nobody will ask for
/// timelines should not pay the host-side cost.
struct TraceConfig {
  bool enabled = false;
  /// Canonical/physical flight-ring capacity (events retained).
  size_t ringCapacity = 8192;
  /// When non-empty: rewrite this file with the canonical flight dump
  /// on every failure trigger (failed launch, breaker open, chaos
  /// invariant violation). Diagnostic output — the on-demand dumps are
  /// the byte-compare surfaces, because *when* the last trigger fired
  /// can depend on physical device state.
  std::string autoDumpPath;
};

/// Deadline verdicts in retirement events and timelines.
enum class DeadlineVerdict : int8_t { kNone = -1, kMiss = 0, kHit = 1 };

[[nodiscard]] std::string_view deadlineVerdictName(DeadlineVerdict verdict);

/// The serving-layer tracer. Every note*() hook is called by
/// LaunchService under its lock, in the deterministic logical order
/// the service makes its decisions — the tracer itself is not
/// separately synchronized, and the dump surfaces must only be read
/// when no pump()/drain() is in flight.
class ServiceTracer {
 public:
  explicit ServiceTracer(TraceConfig config);

  ServiceTracer(const ServiceTracer&) = delete;
  ServiceTracer& operator=(const ServiceTracer&) = delete;

  // --- hooks (service-lock order) --------------------------------
  void noteAdmitted(uint64_t id, const std::string& tenant,
                    const std::string& fingerprint, uint32_t priority,
                    uint64_t deadline, uint64_t queueAhead);
  /// A request refused at submit() (no id was assigned).
  void noteShedAtSubmit(const std::string& tenant, std::string_view reason,
                        bool deadlineShed);
  /// A queued request displaced by a higher-priority arrival.
  void noteEvicted(uint64_t id);
  void noteDispatched(uint64_t id, bool batchFollower,
                      uint64_t queueDelayCycles, uint32_t device,
                      uint32_t shard);
  /// A same-fingerprint batch left the pump (size includes the leader).
  void noteBatch(const std::string& fingerprint, uint32_t size);
  /// Hop `hop` (1-based) moved the request off a lost device.
  void noteMigrated(uint64_t id, uint32_t hop, uint64_t backoffCycles,
                    uint64_t latencySoFar, uint32_t fromDevice,
                    uint32_t toDevice);
  void noteRetryExhausted(uint64_t id, uint32_t hops);
  /// One stranded request charged one trip to its device's breaker.
  void noteBreakerTrip(const std::string& tenant, uint32_t device);
  void noteRetired(uint64_t id, bool ok, StatusCode code, uint64_t latency,
                   uint64_t cycles, DeadlineVerdict verdict);
  void noteEpoch(uint64_t epoch);
  // Physical-ring events (device lifecycle; see the header comment on
  // why these must not share the canonical ring).
  void noteBreakerOpened(uint32_t device, uint64_t epoch);
  void noteBreakerHalfOpen(uint32_t device, uint64_t epoch);
  void notePanicRevival(uint32_t device, uint64_t epoch);
  void noteDeviceRevived(uint32_t device, uint64_t epoch);

  /// Failure trigger (failed launch, breaker open, chaos violation):
  /// rewrite TraceConfig::autoDumpPath with the flight dump, when set.
  void onFailureTrigger(std::string_view reason);

  // --- dump surfaces ---------------------------------------------
  /// Every admitted request's span timeline, in admission order.
  void dumpTimelines(std::ostream& out, bool physical) const;
  /// One request's timeline; non-ok for ids never admitted.
  [[nodiscard]] Status dumpTimeline(std::ostream& out, uint64_t id,
                                    bool physical) const;
  /// Per-tenant SLO burn summary (tenants sorted by name).
  void dumpTenantSummary(std::ostream& out) const;
  /// Queue-delay and batch-size histograms.
  void dumpHistograms(std::ostream& out) const;
  /// Flight-recorder dump: canonical ring, plus the physical ring in
  /// physical mode.
  void dumpFlight(std::ostream& out, bool physical,
                  std::string_view trigger = "on_demand") const;
  [[nodiscard]] Status dumpFlightToFile(const std::string& path,
                                        std::string_view trigger) const;
  /// Export per-tenant tracks (one span per request on the modeled
  /// clock, migration instants, a queue-depth counter) into a
  /// TraceRecorder for Perfetto/chrome://tracing.
  void exportPerfetto(gpusim::TraceRecorder& recorder) const;

  [[nodiscard]] const simprof::FlightRecorder& canonicalRing() const {
    return canonical_;
  }
  [[nodiscard]] const simprof::FlightRecorder& physicalRing() const {
    return physical_;
  }
  /// Admitted requests seen (ids 0 .. requestCount()-1 are valid).
  [[nodiscard]] uint64_t requestCount() const { return requests_.size(); }

 private:
  struct HopTrace {
    uint32_t hop = 0;
    uint64_t backoffCycles = 0;
    uint64_t tick = 0;  ///< modeled latency so far, including backoff
    uint32_t fromDevice = 0;
    uint32_t toDevice = 0;
  };

  enum class EndState : uint8_t { kOpen = 0, kEvicted, kDone, kFailed };

  struct RequestTrace {
    std::string tenant;
    std::string fingerprint;
    uint32_t priority = 0;
    uint64_t deadline = kNoDeadline;
    uint64_t queueAhead = 0;
    bool dispatched = false;
    bool batchFollower = false;
    uint64_t dispatchTick = 0;
    uint32_t device = 0;  ///< physical detail only
    uint32_t shard = 0;   ///< physical detail only
    std::vector<HopTrace> hops;
    EndState end = EndState::kOpen;
    StatusCode code = StatusCode::kOk;
    uint64_t latency = 0;
    uint64_t cycles = 0;
    DeadlineVerdict verdict = DeadlineVerdict::kNone;
  };

  /// Per-tenant SLO burn accounting. Burn counts everything the SLO
  /// lost: completions past the budget plus deadline-carrying work
  /// shed at admission.
  struct TenantBurn {
    uint64_t admitted = 0;
    uint64_t shedAtSubmit = 0;
    uint64_t deadlineShed = 0;
    uint64_t evicted = 0;
    uint64_t completed = 0;
    uint64_t failed = 0;
    uint64_t migratedHops = 0;
    uint64_t deadlineHit = 0;
    uint64_t deadlineMiss = 0;
  };

  void recordCanonical(uint64_t tick, std::string category,
                       std::string detail, std::string physicalDetail = "");
  void recordPhysical(uint64_t tick, std::string category,
                      std::string detail);
  void writeTimelineLocked(std::ostream& out, uint64_t id,
                           bool physical) const;

  TraceConfig config_;
  simprof::FlightRecorder canonical_;
  simprof::FlightRecorder physical_;
  std::vector<RequestTrace> requests_;  ///< indexed by request id
  std::map<std::string, TenantBurn> burn_;
  /// Tenant -> Perfetto track index, in order of first admission.
  std::map<std::string, uint32_t> tenantTrack_;
  std::vector<std::string> trackTenant_;
  LatencyHistogram queueDelay_;
  /// Exact batch-size counts, sizes 1..16 (index size-1); larger
  /// batches clamp into the last cell.
  std::array<uint64_t, 16> batchSize_{};
  uint64_t batchesTotal_ = 0;
};

}  // namespace simtomp::simserve
