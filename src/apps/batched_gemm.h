// Batched small dense matrix multiply: C[b] = A[b] * B[b] for a batch
// of M x M matrices (M ~ 4..8, thousands of batch items).
//
// This is the classic "three explicit layers of parallelism" shape the
// paper's introduction motivates: the batch dimension feeds teams and
// parallel threads, while the M*M output elements of one matrix are a
// small, non-collapsible inner loop (each output needs the whole k
// row/column, so fusing it with the batch loop changes the access
// pattern) that fits a SIMD group.
#pragma once

#include <cstdint>
#include <vector>

#include "apps/common.h"
#include "gpusim/device.h"
#include "omprt/modes.h"
#include "support/status.h"

namespace simtomp::apps {

struct BatchedGemmWorkload {
  uint32_t batch = 1024;
  uint32_t m = 4;           ///< matrix dimension (M x M)
  std::vector<double> a;    ///< batch * m * m
  std::vector<double> b;    ///< batch * m * m
};

BatchedGemmWorkload generateBatchedGemm(uint32_t batch, uint32_t m,
                                        uint64_t seed);

std::vector<double> batchedGemmReference(const BatchedGemmWorkload& w);

struct BatchedGemmOptions {
  uint32_t numTeams = 32;
  uint32_t threadsPerTeam = 128;
  /// 1 = two-level baseline (serial M*M loop per thread).
  uint32_t simdlen = 1;
  /// Generic or SPMD parallel regions (teams are always SPMD here).
  omprt::ExecMode parallelMode = omprt::ExecMode::kGeneric;
};

Result<AppRunResult> runBatchedGemm(gpusim::Device& device,
                                    const BatchedGemmWorkload& w,
                                    const BatchedGemmOptions& options);

}  // namespace simtomp::apps
