// su3_lattice: the SU3_bench workload as a user application, with an
// execution trace.
//
// Demonstrates:
//   * running a realistic kernel (lattice-QCD SU(3) matrix products)
//     at several SIMD group sizes and picking the best, as the paper's
//     section 6.5 guidance recommends;
//   * attaching a TraceRecorder and dumping a chrome://tracing /
//     Perfetto JSON of the block schedule for the winning run;
//   * reading occupancy info off the kernel statistics.
#include <cstdio>

#include "apps/su3.h"
#include "gpusim/device.h"
#include "gpusim/trace.h"

using namespace simtomp;

int main() {
  const apps::Su3Workload workload = apps::generateSu3(2560, 21);
  std::printf("su3_lattice: %u sites, %u-element inner loop\n",
              workload.numSites, apps::kSu3InnerTrip);

  uint32_t best_group = 1;
  uint64_t best_cycles = ~uint64_t{0};
  for (uint32_t group : {1u, 2u, 4u, 8u, 16u, 32u}) {
    gpusim::Device device;
    apps::Su3Options options;
    options.numTeams = 32;
    options.threadsPerTeam = 128;
    options.simdlen = group;
    auto result = apps::runSu3(device, workload, options);
    if (!result.isOk() || !result.value().verified) {
      std::fprintf(stderr, "su3 run failed (group %u)\n", group);
      return 1;
    }
    const auto& stats = result.value().stats;
    std::printf("  group %-2u %10llu cycles  occupancy %.0f%%  waves %u\n",
                group, static_cast<unsigned long long>(stats.cycles),
                stats.occupancy.warpOccupancy * 100.0, stats.waves);
    if (stats.cycles < best_cycles) {
      best_cycles = stats.cycles;
      best_group = group;
    }
  }
  std::printf("best simdlen: %u\n", best_group);

  // Re-run the winner with tracing and dump the block schedule.
  gpusim::Device device;
  gpusim::TraceRecorder trace;
  device.setTraceRecorder(&trace);
  apps::Su3Options options;
  options.numTeams = 32;
  options.threadsPerTeam = 128;
  options.simdlen = best_group;
  auto result = apps::runSu3(device, workload, options);
  if (!result.isOk() || !result.value().verified) {
    std::fprintf(stderr, "traced su3 run failed\n");
    return 1;
  }
  const char* path = "su3_trace.json";
  const Status written = trace.writeChromeJson(path);
  if (!written.isOk()) {
    std::fprintf(stderr, "trace write failed: %s\n",
                 written.toString().c_str());
    return 1;
  }
  std::printf("wrote %zu trace events to %s (open in chrome://tracing)\n",
              trace.size(), path);
  return 0;
}
