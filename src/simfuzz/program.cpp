#include "simfuzz/program.h"

#include <bit>
#include <charconv>
#include <sstream>
#include <vector>

namespace simtomp::simfuzz {

namespace {

using omprt::ExecMode;
using omprt::ForSchedule;

std::string_view schedName(ForSchedule kind) {
  switch (kind) {
    case ForSchedule::kStaticCyclic: return "cyclic";
    case ForSchedule::kStaticChunked: return "chunked";
    case ForSchedule::kDynamic: return "dynamic";
  }
  return "cyclic";
}

template <typename T>
bool parseUint(std::string_view text, T& out) {
  uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size()) return false;
  out = static_cast<T>(value);
  return out == value || sizeof(T) == sizeof(uint64_t);
}

bool parseInt(std::string_view text, int64_t& out) {
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), out);
  return ec == std::errc{} && ptr == text.data() + text.size();
}

uint32_t floorPow2(uint32_t v) {
  if (v == 0) return 1;
  return uint32_t{1} << (31 - static_cast<uint32_t>(std::countl_zero(v)));
}

}  // namespace

std::string_view constructName(Construct c) {
  switch (c) {
    case Construct::kDistributeParallelFor: return "dpf";
    case Construct::kScheduledFor: return "sched";
    case Construct::kBarrierParallel: return "barrier";
  }
  return "dpf";
}

std::string_view bodyKindName(BodyKind b) {
  switch (b) {
    case BodyKind::kAffineMap: return "map";
    case BodyKind::kSimdNest: return "nest";
    case BodyKind::kSimdReduce: return "reduce";
    case BodyKind::kAtomicSum: return "atomic";
    case BodyKind::kConvergentMap: return "conv";
  }
  return "map";
}

std::string_view injectKindName(InjectKind k) {
  switch (k) {
    case InjectKind::kNone: return "none";
    case InjectKind::kOffByOne: return "offbyone";
    case InjectKind::kDropIteration: return "dropiter";
  }
  return "none";
}

void FuzzProgram::normalize() {
  // Launch shape: keep every program valid on all three arch profiles.
  // threadsPerTeam must be a multiple of 64 (AMD wavefronts) and leave
  // room for the generic-mode main warp under testTiny's 256-thread
  // block cap: 192 + 32 = 224 fits; 192 + 64 = 256 fits sim-mi100.
  if (numTeams == 0) numTeams = 1;
  if (numTeams > 4) numTeams = 1 + (numTeams - 1) % 4;
  threadsPerTeam = threadsPerTeam - threadsPerTeam % 64;
  if (threadsPerTeam == 0) threadsPerTeam = 64;
  if (threadsPerTeam > 192) threadsPerTeam = 192;

  simdlen = floorPow2(simdlen);
  if (simdlen > 64) simdlen = 64;

  if (outerTrip == 0) outerTrip = 1;
  if (outerTrip > 256) outerTrip = 1 + (outerTrip - 1) % 256;
  if (innerTrip > 96) innerTrip = innerTrip % 97;

  // Coefficients stay small so every computed value is an exact
  // integer-valued double (sums compare bitwise in any order).
  if (a == 0) a = 1;
  a = a > 0 ? 1 + (a - 1) % 3 : -(1 + (-a - 1) % 3);
  b = b >= 0 ? b % 6 : -((-b) % 6);

  if (pressure > 2) pressure = pressure % 3;
  if (sharingSpaceBytes != 256 && sharingSpaceBytes != 1024 &&
      sharingSpaceBytes != omprt::kDefaultSharingSpaceBytes) {
    sharingSpaceBytes = omprt::kDefaultSharingSpaceBytes;
  }

  // Grammar constraints per construct/body.
  if (construct == Construct::kBarrierParallel) {
    // rt::teamBarrier needs a full-SPMD launch; the two phases use the
    // out2 segment as a one-entry-per-row scratch.
    teamsMode = ExecMode::kSPMD;
    parallelMode = ExecMode::kSPMD;
    body = BodyKind::kAffineMap;
    innerTrip = 1;
  }
  if (construct != Construct::kScheduledFor) {
    schedKind = ForSchedule::kStaticCyclic;
    schedChunk = 0;
  }
  if (schedChunk > 16) schedChunk = schedChunk % 17;

  // Sharing pressure rides the globalized simd payload; only the
  // inner-simd bodies have one.
  const bool has_simd_payload = body == BodyKind::kSimdNest ||
                                body == BodyKind::kConvergentMap ||
                                body == BodyKind::kSimdReduce;
  if (!has_simd_payload) pressure = 0;
}

dsl::LaunchSpec FuzzProgram::launchSpec() const {
  dsl::LaunchSpec spec;
  spec.numTeams = numTeams;
  spec.threadsPerTeam = threadsPerTeam;
  spec.teamsMode = teamsMode;
  spec.parallelMode = parallelMode;
  spec.simdlen = simdlen;
  spec.sharingSpaceBytes = sharingSpaceBytes;
  // Environment-independent by construction: checking pinned on
  // (explicit beats SIMTOMP_CHECK), fault injection pinned off.
  spec.check.mode = simcheck::CheckMode::kReport;
  spec.faultSpec = "off";
  return spec;
}

std::string FuzzProgram::serialize() const {
  std::ostringstream out;
  out << "fuzzprog v1"
      << " seed=" << seed
      << " construct=" << constructName(construct)
      << " body=" << bodyKindName(body)
      << " teams=" << numTeams
      << " threads=" << threadsPerTeam
      << " tmode=" << omprt::execModeName(teamsMode)
      << " pmode=" << omprt::execModeName(parallelMode)
      << " simdlen=" << simdlen
      << " sched=" << schedName(schedKind)
      << " chunk=" << schedChunk
      << " outer=" << outerTrip
      << " inner=" << innerTrip
      << " pressure=" << pressure
      << " sharing=" << sharingSpaceBytes
      << " a=" << a
      << " b=" << b
      << " inject=" << injectKindName(inject);
  return out.str();
}

Result<FuzzProgram> FuzzProgram::parse(std::string_view text) {
  // Pick the first non-comment, non-blank line.
  std::string_view line;
  while (!text.empty()) {
    const size_t eol = text.find('\n');
    line = text.substr(0, eol);
    text = eol == std::string_view::npos ? std::string_view{}
                                         : text.substr(eol + 1);
    while (!line.empty() && (line.front() == ' ' || line.front() == '\r')) {
      line.remove_prefix(1);
    }
    while (!line.empty() && (line.back() == ' ' || line.back() == '\r')) {
      line.remove_suffix(1);
    }
    if (!line.empty() && line.front() != '#') break;
    line = {};
  }
  if (line.empty()) {
    return Status::invalidArgument("simfuzz: no program line found");
  }

  std::vector<std::string_view> tokens;
  size_t pos = 0;
  while (pos < line.size()) {
    const size_t next = line.find(' ', pos);
    const std::string_view tok =
        line.substr(pos, next == std::string_view::npos ? next : next - pos);
    if (!tok.empty()) tokens.push_back(tok);
    if (next == std::string_view::npos) break;
    pos = next + 1;
  }
  if (tokens.size() < 2 || tokens[0] != "fuzzprog" || tokens[1] != "v1") {
    return Status::invalidArgument(
        "simfuzz: program line must start with 'fuzzprog v1'");
  }

  FuzzProgram p;
  for (size_t i = 2; i < tokens.size(); ++i) {
    const std::string_view tok = tokens[i];
    const size_t eq = tok.find('=');
    if (eq == std::string_view::npos) {
      return Status::invalidArgument("simfuzz: malformed token '" +
                                     std::string(tok) + "'");
    }
    const std::string_view key = tok.substr(0, eq);
    const std::string_view value = tok.substr(eq + 1);
    bool ok = true;
    if (key == "seed") {
      ok = parseUint(value, p.seed);
    } else if (key == "construct") {
      if (value == "dpf") p.construct = Construct::kDistributeParallelFor;
      else if (value == "sched") p.construct = Construct::kScheduledFor;
      else if (value == "barrier") p.construct = Construct::kBarrierParallel;
      else ok = false;
    } else if (key == "body") {
      if (value == "map") p.body = BodyKind::kAffineMap;
      else if (value == "nest") p.body = BodyKind::kSimdNest;
      else if (value == "reduce") p.body = BodyKind::kSimdReduce;
      else if (value == "atomic") p.body = BodyKind::kAtomicSum;
      else if (value == "conv") p.body = BodyKind::kConvergentMap;
      else ok = false;
    } else if (key == "teams") {
      ok = parseUint(value, p.numTeams);
    } else if (key == "threads") {
      ok = parseUint(value, p.threadsPerTeam);
    } else if (key == "tmode" || key == "pmode") {
      ExecMode mode = ExecMode::kSPMD;
      if (value == "spmd") mode = ExecMode::kSPMD;
      else if (value == "generic") mode = ExecMode::kGeneric;
      else ok = false;
      (key == "tmode" ? p.teamsMode : p.parallelMode) = mode;
    } else if (key == "simdlen") {
      ok = parseUint(value, p.simdlen);
    } else if (key == "sched") {
      if (value == "cyclic") p.schedKind = ForSchedule::kStaticCyclic;
      else if (value == "chunked") p.schedKind = ForSchedule::kStaticChunked;
      else if (value == "dynamic") p.schedKind = ForSchedule::kDynamic;
      else ok = false;
    } else if (key == "chunk") {
      ok = parseUint(value, p.schedChunk);
    } else if (key == "outer") {
      ok = parseUint(value, p.outerTrip);
    } else if (key == "inner") {
      ok = parseUint(value, p.innerTrip);
    } else if (key == "pressure") {
      ok = parseUint(value, p.pressure);
    } else if (key == "sharing") {
      ok = parseUint(value, p.sharingSpaceBytes);
    } else if (key == "a") {
      ok = parseInt(value, p.a);
    } else if (key == "b") {
      ok = parseInt(value, p.b);
    } else if (key == "inject") {
      if (value == "none") p.inject = InjectKind::kNone;
      else if (value == "offbyone") p.inject = InjectKind::kOffByOne;
      else if (value == "dropiter") p.inject = InjectKind::kDropIteration;
      else ok = false;
    } else {
      return Status::invalidArgument("simfuzz: unknown key '" +
                                     std::string(key) + "'");
    }
    if (!ok) {
      return Status::invalidArgument("simfuzz: bad value in token '" +
                                     std::string(tok) + "'");
    }
  }
  p.normalize();
  return p;
}

}  // namespace simtomp::simfuzz
