// LaunchService admission, scheduling, batching and migration tests.
//
// Every expectation here is about *logical* state — dispatch order,
// shed decisions, modeled latency — which the service derives from
// (arrival seq, tenant, priority, queue contents) only, so these tests
// are exact, not statistical.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "hostrt/device_manager.h"
#include "simserve/service.h"

namespace simtomp::simserve {
namespace {

using gpusim::ArchSpec;

omprt::TargetConfig tinyConfig() {
  omprt::TargetConfig config;
  config.teamsMode = omprt::ExecMode::kSPMD;
  config.numTeams = 1;
  config.threadsPerTeam = 64;
  config.parallelMode = omprt::ExecMode::kSPMD;
  config.check.mode = simcheck::CheckMode::kOff;
  config.fault.spec = "off";  // never consult SIMTOMP_FAULT in tests
  return config;
}

omprt::TargetRegionFn nop() {
  return [](omprt::OmpContext&) {};
}

TenantSpec tenant(std::string name, uint32_t priority = 1,
                  uint32_t in_flight = 64, uint32_t queued = 256) {
  TenantSpec spec;
  spec.name = std::move(name);
  spec.priority = priority;
  spec.maxInFlight = in_flight;
  spec.maxQueued = queued;
  return spec;
}

/// Unique fingerprint per call site — disables batching so dispatch
/// order is one request at a time.
std::string fp(uint64_t i) { return "fp" + std::to_string(i); }

TEST(LaunchServiceTest, RegistrationValidation) {
  hostrt::DeviceManager mgr({ArchSpec::testTiny()});
  LaunchService service(mgr);
  EXPECT_TRUE(service.registerTenant(tenant("a")).isOk());
  EXPECT_EQ(service.registerTenant(tenant("a")).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(service.registerTenant(tenant("")).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(service.registerTenant(tenant("b", /*priority=*/0)).code(),
            StatusCode::kInvalidArgument);
  const auto unknown = service.submit("nobody", tinyConfig(), nop(), "k");
  ASSERT_FALSE(unknown.isOk());
  EXPECT_EQ(unknown.status().code(), StatusCode::kInvalidArgument);
}

TEST(LaunchServiceTest, ZeroQuotaTenantIsSuspended) {
  hostrt::DeviceManager mgr({ArchSpec::testTiny()});
  LaunchService service(mgr);
  ASSERT_TRUE(
      service.registerTenant(tenant("noflight", 1, /*in_flight=*/0)).isOk());
  ASSERT_TRUE(
      service
          .registerTenant(tenant("noqueue", 1, /*in_flight=*/8, /*queued=*/0))
          .isOk());
  for (const char* name : {"noflight", "noqueue"}) {
    const auto shed = service.submit(name, tinyConfig(), nop(), "k");
    ASSERT_FALSE(shed.isOk()) << name;
    EXPECT_EQ(shed.status().code(), StatusCode::kResourceExhausted) << name;
    const TenantStats stats = service.tenantStats(name);
    EXPECT_EQ(stats.submitted, 1u) << name;
    EXPECT_EQ(stats.accepted, 0u) << name;
    EXPECT_EQ(stats.shed, 1u) << name;
  }
  EXPECT_EQ(service.queuedRequests(), 0u);
  EXPECT_TRUE(service.runToCompletion().isOk());
}

TEST(LaunchServiceTest, EqualPrioritiesDegradeToArrivalOrder) {
  hostrt::DeviceManager mgr({ArchSpec::testTiny(), ArchSpec::testTiny()});
  LaunchService service(mgr);
  for (const char* name : {"a", "b", "c"}) {
    ASSERT_TRUE(service.registerTenant(tenant(name, /*priority=*/1)).isOk());
  }
  const char* tenants[] = {"a", "c", "b", "b", "a", "c", "a", "b", "c"};
  for (uint64_t i = 0; i < std::size(tenants); ++i) {
    const auto id = service.submit(tenants[i], tinyConfig(), nop(), fp(i));
    ASSERT_TRUE(id.isOk());
    EXPECT_EQ(id.value(), i);
  }
  EXPECT_EQ(service.pump(), std::size(tenants));
  const std::vector<uint64_t> order = service.dispatchOrder();
  ASSERT_EQ(order.size(), std::size(tenants));
  for (uint64_t i = 0; i < order.size(); ++i) {
    EXPECT_EQ(order[i], i) << "equal priorities must preserve arrival order";
  }
  EXPECT_TRUE(service.drain().isOk());
}

TEST(LaunchServiceTest, WeightedRoundRobinServesClassesByPriority) {
  hostrt::DeviceManager mgr({ArchSpec::testTiny()});
  LaunchService service(mgr);
  ASSERT_TRUE(service.registerTenant(tenant("hi", /*priority=*/3)).isOk());
  ASSERT_TRUE(service.registerTenant(tenant("lo", /*priority=*/1)).isOk());
  for (uint64_t i = 0; i < 6; ++i) {
    ASSERT_TRUE(service.submit("hi", tinyConfig(), nop(), fp(i)).isOk());
  }
  for (uint64_t i = 6; i < 12; ++i) {
    ASSERT_TRUE(service.submit("lo", tinyConfig(), nop(), fp(i)).isOk());
  }
  EXPECT_EQ(service.pump(), 12u);
  // Rounds of (3 hi, 1 lo) until hi runs dry, then lo alone.
  const std::vector<uint64_t> expected = {0, 1, 2, 6, 3, 4, 5, 7, 8, 9, 10,
                                          11};
  EXPECT_EQ(service.dispatchOrder(), expected);
  EXPECT_TRUE(service.drain().isOk());
}

TEST(LaunchServiceTest, SameKernelBatchingAmortizesResolution) {
  hostrt::DeviceManager mgr({ArchSpec::testTiny()});
  LaunchService service(mgr);
  ASSERT_TRUE(service.registerTenant(tenant("a")).isOk());
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(service.submit("a", tinyConfig(), nop(), "same").isOk());
  }
  ASSERT_TRUE(service.submit("a", tinyConfig(), nop(), "other").isOk());
  EXPECT_EQ(service.pump(), 5u);
  EXPECT_EQ(service.batchesDispatched(), 2u);
  EXPECT_EQ(service.amortizedResolutions(), 3u);
  EXPECT_FALSE(service.outcome(0).batchFollower);
  for (uint64_t id : {1u, 2u, 3u}) {
    EXPECT_TRUE(service.outcome(id).batchFollower) << id;
  }
  EXPECT_FALSE(service.outcome(4).batchFollower);
  // Modeled pre-execution latency: ahead * 16 + 256 (leader) / 32
  // (follower).
  EXPECT_EQ(service.outcome(0).modeledLatencyCycles, 256u);
  EXPECT_EQ(service.outcome(1).modeledLatencyCycles, 1 * 16u + 32u);
  EXPECT_EQ(service.outcome(2).modeledLatencyCycles, 2 * 16u + 32u);
  EXPECT_EQ(service.outcome(3).modeledLatencyCycles, 3 * 16u + 32u);
  EXPECT_TRUE(service.drain().isOk());
}

TEST(LaunchServiceTest, InFlightBudgetHoldsBackDispatchUntilDrain) {
  hostrt::DeviceManager mgr({ArchSpec::testTiny()});
  LaunchService service(mgr);
  ASSERT_TRUE(
      service.registerTenant(tenant("a", 1, /*in_flight=*/2)).isOk());
  for (uint64_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(service.submit("a", tinyConfig(), nop(), fp(i)).isOk());
  }
  EXPECT_EQ(service.pump(), 2u);
  EXPECT_EQ(service.queuedRequests(), 3u);
  EXPECT_EQ(service.pump(), 0u);  // budget exhausted until drain
  ASSERT_TRUE(service.drain().isOk());
  EXPECT_EQ(service.pump(), 2u);
  ASSERT_TRUE(service.runToCompletion().isOk());
  EXPECT_EQ(service.queuedRequests(), 0u);
  EXPECT_EQ(service.peakInFlight(), 2u);
  EXPECT_EQ(service.tenantStats("a").completed, 5u);
}

TEST(LaunchServiceTest, GlobalBoundShedsLowestPriorityNewest) {
  hostrt::DeviceManager mgr({ArchSpec::testTiny()});
  ServiceConfig config;
  config.maxQueued = 4;
  // This test exercises the hard bound's evict-or-refuse rule; keep
  // brownout (which would shed "lo" arrivals earlier) out of the way.
  config.brownoutHighWater = config.maxQueued + 1;
  LaunchService service(mgr, config);
  ASSERT_TRUE(service.registerTenant(tenant("lo", /*priority=*/1)).isOk());
  ASSERT_TRUE(service.registerTenant(tenant("hi", /*priority=*/2)).isOk());
  for (uint64_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(service.submit("lo", tinyConfig(), nop(), fp(i)).isOk());
  }
  // Equal-priority incoming is itself the lowest-priority newest: shed.
  const auto refused = service.submit("lo", tinyConfig(), nop(), fp(4));
  ASSERT_FALSE(refused.isOk());
  EXPECT_EQ(refused.status().code(), StatusCode::kResourceExhausted);
  // Higher-priority incoming evicts the newest queued low request.
  const auto admitted = service.submit("hi", tinyConfig(), nop(), fp(5));
  ASSERT_TRUE(admitted.isOk());
  EXPECT_EQ(service.outcome(3).state, RequestState::kShed);
  const TenantStats lo = service.tenantStats("lo");
  EXPECT_EQ(lo.shed, 2u);     // one refused + one evicted
  EXPECT_EQ(lo.evicted, 1u);
  EXPECT_EQ(service.queuedRequests(), 4u);
  ASSERT_TRUE(service.runToCompletion().isOk());
  EXPECT_EQ(service.tenantStats("hi").completed, 1u);
  EXPECT_EQ(service.tenantStats("lo").completed, 3u);
}

TEST(LaunchServiceTest, PerTenantQueueQuotaShedsIncoming) {
  hostrt::DeviceManager mgr({ArchSpec::testTiny()});
  LaunchService service(mgr);
  ASSERT_TRUE(
      service.registerTenant(tenant("a", 1, 64, /*queued=*/2)).isOk());
  ASSERT_TRUE(service.submit("a", tinyConfig(), nop(), fp(0)).isOk());
  ASSERT_TRUE(service.submit("a", tinyConfig(), nop(), fp(1)).isOk());
  const auto shed = service.submit("a", tinyConfig(), nop(), fp(2));
  ASSERT_FALSE(shed.isOk());
  EXPECT_EQ(shed.status().code(), StatusCode::kResourceExhausted);
  ASSERT_TRUE(service.runToCompletion().isOk());
}

TEST(LaunchServiceTest, SameFingerprintRequestsShareAShard) {
  hostrt::DeviceManager mgr(
      {ArchSpec::testTiny(), ArchSpec::testTiny(), ArchSpec::testTiny(),
       ArchSpec::testTiny()});
  ServiceConfig config;
  config.shardCount = 8;
  LaunchService service(mgr, config);
  ASSERT_TRUE(service.registerTenant(tenant("a")).isOk());
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(service.submit("a", tinyConfig(), nop(), "colocate").isOk());
  }
  EXPECT_EQ(service.shardCount(), 8u);
  const uint32_t shard = service.outcome(0).shard;
  for (uint64_t id = 1; id < 6; ++id) {
    EXPECT_EQ(service.outcome(id).shard, shard);
  }
  ASSERT_TRUE(service.runToCompletion().isOk());
  const uint32_t device = service.outcome(0).device;
  for (uint64_t id = 1; id < 6; ++id) {
    EXPECT_EQ(service.outcome(id).device, device);
  }
}

TEST(LaunchServiceTest, DeviceLossMigratesWithoutLosingRequests) {
  hostrt::DeviceManager mgr({ArchSpec::testTiny(), ArchSpec::testTiny()});
  // One trip opens the breaker and the cool-down never elapses in this
  // test, so the faulted device stays quarantined until reviveDevice —
  // the strictest breaker setting (default policy tolerates one
  // transient loss and re-admits the device after its reset).
  ServiceConfig config;
  config.breaker.tripThreshold = 1;
  config.breaker.cooldownEpochs = 1000;
  LaunchService service(mgr, config);
  ASSERT_TRUE(service.registerTenant(tenant("a")).isOk());
  omprt::TargetConfig faulted = tinyConfig();
  faulted.fault.spec = "device_lost_post:count=1";
  // Three same-fingerprint requests (one batch, one device); the middle
  // one kills its device after executing.
  ASSERT_TRUE(service.submit("a", tinyConfig(), nop(), "k").isOk());
  ASSERT_TRUE(service.submit("a", faulted, nop(), "k").isOk());
  ASSERT_TRUE(service.submit("a", tinyConfig(), nop(), "k").isOk());
  ASSERT_TRUE(service.runToCompletion().isOk());

  for (uint64_t id = 0; id < 3; ++id) {
    EXPECT_EQ(service.outcome(id).state, RequestState::kDone) << id;
  }
  EXPECT_TRUE(service.outcome(1).migrated);
  EXPECT_EQ(service.tenantStats("a").migrated, 1u);
  EXPECT_EQ(service.tenantStats("a").completed, 3u);
  // Dispatch order: the accepted order, then the re-dispatch appended.
  const std::vector<uint64_t> expected = {0, 1, 2, 1};
  EXPECT_EQ(service.dispatchOrder(), expected);

  // The faulted device was drained, quiesced and reset; its shards now
  // map to the surviving device.
  size_t serving = 0, quiesced_device = 0;
  for (size_t d = 0; d < mgr.numDevices(); ++d) {
    if (service.deviceServing(d)) {
      ++serving;
    } else {
      quiesced_device = d;
    }
  }
  ASSERT_EQ(serving, 1u);
  // The breaker opened on the trip: the device reads quarantined (the
  // overlay) with a completed reset underneath.
  EXPECT_EQ(mgr.deviceHealth(quiesced_device),
            simfault::DeviceHealth::kQuarantined);
  EXPECT_EQ(service.breakerState(quiesced_device),
            simfault::BreakerState::kOpen);
  for (size_t s = 0; s < service.shardCount(); ++s) {
    EXPECT_NE(service.shardDevice(s), quiesced_device);
  }

  // Revival force-closes the breaker and restores the canonical
  // mapping (health falls back to the underlying kReset).
  service.reviveDevice(quiesced_device);
  EXPECT_TRUE(service.deviceServing(quiesced_device));
  EXPECT_EQ(service.breakerState(quiesced_device),
            simfault::BreakerState::kClosed);
  EXPECT_EQ(mgr.deviceHealth(quiesced_device), simfault::DeviceHealth::kReset);
  bool any_on_revived = false;
  for (size_t s = 0; s < service.shardCount(); ++s) {
    any_on_revived |= service.shardDevice(s) == quiesced_device;
  }
  EXPECT_TRUE(any_on_revived);
}

TEST(LaunchServiceTest, LosingEveryDeviceFailsPendingWork) {
  hostrt::DeviceManager mgr({ArchSpec::testTiny()});
  // Total-loss path: the strictest breaker plus no panic revival, so
  // losing the only device really empties the serving set (the default
  // config would instead keep the device in traffic).
  ServiceConfig config;
  config.breaker.tripThreshold = 1;
  config.panicRevival = false;
  LaunchService service(mgr, config);
  ASSERT_TRUE(service.registerTenant(tenant("a")).isOk());
  omprt::TargetConfig faulted = tinyConfig();
  faulted.fault.spec = "device_lost_post:count=1";
  ASSERT_TRUE(service.submit("a", faulted, nop(), "k").isOk());
  service.pump();
  const Status drained = service.drain();
  ASSERT_FALSE(drained.isOk());
  EXPECT_EQ(drained.code(), StatusCode::kUnavailable);
  EXPECT_EQ(service.outcome(0).state, RequestState::kFailed);
  EXPECT_EQ(service.tenantStats("a").failed, 1u);
}

TEST(LaunchServiceTest, FingerprintHashIsStableFnv1a) {
  // FNV-1a offset basis for the empty string; platform-independent by
  // construction (std::hash would not be).
  EXPECT_EQ(fingerprintHash(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(fingerprintHash("axpy"), fingerprintHash("axpy"));
  EXPECT_NE(fingerprintHash("axpy"), fingerprintHash("stencil"));
}

TEST(LatencyHistogramTest, QuantileUpperBounds) {
  LatencyHistogram hist;
  EXPECT_EQ(hist.quantileUpperBound(0.5), 0u);
  for (uint64_t v = 1; v <= 100; ++v) hist.observe(v);
  EXPECT_EQ(hist.count(), 100u);
  EXPECT_EQ(hist.sum(), 5050u);
  // Buckets are powers of 4: <=4 holds 4 values, <=16 holds 16, <=64
  // holds 64, <=256 holds all 100.
  EXPECT_EQ(hist.quantileUpperBound(0.5), 64u);
  EXPECT_EQ(hist.quantileUpperBound(0.99), 256u);
  EXPECT_EQ(hist.toString(), "count=100 sum=5050 p50<=64 p99<=256");
}

}  // namespace
}  // namespace simtomp::simserve
