#include "support/lane_mask.h"

namespace simtomp {

std::string maskToString(LaneMask mask, unsigned width) {
  std::string out = "0b";
  for (unsigned i = width; i-- > 0;) {
    out.push_back(laneIn(mask, i) ? '1' : '0');
  }
  return out;
}

}  // namespace simtomp
