// simtomp_fault: exercise the (fault x policy) resilience matrix.
//
//   simtomp_fault matrix [--workers N]
//
// Runs every simfault kind against every recovery policy rung on a
// fresh tiny device manager and prints the resulting ResilienceReports.
// The output is deterministic by contract — byte-identical for any
// --workers value — so CI diffs two runs (and a 1-vs-8-worker pair)
// with cmp(1). See docs/FAULTS.md.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iterator>
#include <string>
#include <vector>

#include "dsl/dsl.h"
#include "hostrt/device_manager.h"
#include "omprt/runtime.h"
#include "simfault/fault.h"
#include "simfault/resilience.h"
#include "support/status.h"

namespace simtomp {
namespace {

struct FaultCase {
  const char* label;  ///< row label (stable across spec tweaks)
  const char* spec;   ///< SIMTOMP_FAULT-grammar plan
};

// One case per FaultKind. The transient device-lost pairs consume
// themselves after one attempt (count=1); the SIMD-predicated pair
// heals when the mode fallback drops simdlen to 1; the last two fire
// on every attempt (count=0) and only the fault-stripped host-serial
// reference gets past them.
const FaultCase kFaultCases[] = {
    {"device_lost_pre", "device_lost_pre:count=1"},
    {"device_lost_post", "device_lost_post:count=1"},
    {"trap", "trap:block=0:step=50:count=0:when=simd"},
    {"sharing_exhausted", "sharing_exhausted:block=0:count=0:when=simd"},
    {"barrier_corrupt", "barrier_corrupt:block=0:count=0"},
    {"livelock", "livelock:block=0:count=0"},
};

struct PolicyCase {
  const char* label;
  simfault::ResiliencePolicy policy;
};

std::vector<PolicyCase> policyCases() {
  simfault::ResiliencePolicy retry_only;
  retry_only.modeFallback = false;
  retry_only.hostSerial = false;
  simfault::ResiliencePolicy retry_mode;
  retry_mode.hostSerial = false;
  simfault::ResiliencePolicy full;
  return {{"retry", retry_only}, {"retry+mode", retry_mode}, {"full", full}};
}

constexpr uint64_t kTile = 8;
constexpr uint64_t kTrip = 192;  // 24 tiles of 8, split over 2 teams

/// One cell of the matrix: a fresh manager/device, the classic
/// generic-teams + generic-parallel + simdlen-4 kernel (so every fault
/// site — scheduler steps, barrier arrivals, sharing-space begins — is
/// exercised), the case's fault plan, one resilient launch.
int runCell(const FaultCase& fault, const PolicyCase& policy,
            uint32_t workers) {
  hostrt::DeviceManager mgr({gpusim::ArchSpec::testTiny()});
  mgr.setDefaultResilience(policy.policy, simfault::ResilienceMode::kOn);

  std::vector<uint64_t> out(kTrip, 0);

  omprt::TargetConfig config;
  config.teamsMode = omprt::ExecMode::kGeneric;
  config.numTeams = 2;
  config.threadsPerTeam = 64;
  config.parallelMode = omprt::ExecMode::kGeneric;
  config.simdlen = 4;
  config.hostWorkers = workers;
  config.check.mode = simcheck::CheckMode::kOff;
  config.fault.spec = fault.spec;
  // Small enough that a livelock dies quickly, far above what any
  // healthy attempt of this kernel needs.
  config.watchdogSteps = 200000;

  omprt::ParallelConfig pc;
  pc.modeAuto = true;           // follow the launch-wide parallel mode
  pc.simdGroupSize = 0;         // follow the launch-wide simdlen
  // Three-level structure (teams / parallel-for over tiles / simd over
  // lanes) so generic-mode launches route tile arguments through the
  // sharing space — the kSharingExhausted site.
  auto region = [&](omprt::OmpContext& ctx) {
    const omprt::rt::Range r =
        omprt::rt::distributeStatic(ctx, kTrip / kTile);
    auto tile_body = [&out, base = r.begin](omprt::OmpContext& c,
                                            uint64_t logical) {
      const uint64_t tile = base + logical;
      c.gpu().work(2);
      dsl::simd(c, kTile, [&out, tile](omprt::OmpContext& cc, uint64_t lane) {
        const uint64_t i = tile * kTile + lane;
        cc.gpu().work(2);
        out[i] = 3 * i + 7;
      });
    };
    dsl::parallelFor(ctx, r.size(), tile_body, pc);
  };

  const auto stats = mgr.launchOn(0, config, region);
  const simfault::ResilienceReport& report = mgr.lastResilienceReport(0);

  std::printf("=== fault=%s policy=%s ===\n", fault.label, policy.label);
  std::printf("health: %s\n",
              std::string(simfault::deviceHealthName(mgr.deviceHealth(0)))
                  .c_str());
  std::printf("%s", report.toString().c_str());
  if (stats.isOk()) {
    bool verified = true;
    for (uint64_t i = 0; i < kTrip; ++i) {
      if (out[i] != 3 * i + 7) verified = false;
    }
    std::printf("verify: %s\n", verified ? "ok" : "FAIL");
    if (!verified) return 1;
  } else {
    std::printf("verify: skipped (launch failed)\n");
  }
  std::printf("\n");
  return 0;
}

int runMatrix(uint32_t workers) {
  std::printf("simtomp_fault matrix: %zu fault kinds x %zu policies\n\n",
              std::size(kFaultCases), policyCases().size());
  int rc = 0;
  for (const FaultCase& fault : kFaultCases) {
    for (const PolicyCase& policy : policyCases()) {
      rc |= runCell(fault, policy, workers);
    }
  }
  return rc;
}

int usage() {
  std::fprintf(stderr, "usage: simtomp_fault matrix [--workers N]\n");
  return 2;
}

}  // namespace
}  // namespace simtomp

int main(int argc, char** argv) {
  if (argc < 2 || std::strcmp(argv[1], "matrix") != 0) {
    return simtomp::usage();
  }
  uint32_t workers = 1;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
      workers = static_cast<uint32_t>(std::atoi(argv[++i]));
      if (workers == 0) return simtomp::usage();
    } else {
      return simtomp::usage();
    }
  }
  return simtomp::runMatrix(workers);
}
