#include "gpusim/block.h"

#include <algorithm>

#include "support/log.h"

namespace simtomp::gpusim {

// The arena hands ThreadCtx storage out by pointer bump and never runs
// destructors; the context must not grow owning members.
static_assert(std::is_trivially_destructible_v<ThreadCtx>,
              "ThreadCtx lives in the block arena");
static_assert(std::is_trivially_destructible_v<BatchPoint>,
              "BatchPoint lives in the block arena");

BlockEngine::BlockEngine(const ArchSpec& arch, const CostModel& cost,
                         DeviceMemory& global_memory, uint32_t block_id,
                         uint32_t num_blocks, uint32_t num_threads)
    : arch_(&arch),
      cost_(&cost),
      global_(&global_memory),
      block_id_(block_id),
      shared_(arch.sharedMemPerBlock),
      scheduler_(fiber::FiberScheduler::kDefaultStackSize,
                 [this](size_t stack_size) {
                   // Fiber stacks bump through the block arena (and its
                   // thread-local pool of warm slabs) instead of the heap.
                   return static_cast<char*>(
                       arena_.arena().allocate(stack_size, 64));
                 }) {
  SIMTOMP_CHECK(num_threads > 0, "block must have at least one thread");
  SIMTOMP_CHECK(num_threads <= arch.maxThreadsPerBlock,
                "block exceeds maxThreadsPerBlock");
  const uint32_t num_warps = (num_threads + arch.warpSize - 1) / arch.warpSize;
  warps_.resize(num_warps);
  num_threads_ = num_threads;
  threads_ = static_cast<ThreadCtx*>(
      arena_.arena().allocate(num_threads * sizeof(ThreadCtx),
                              alignof(ThreadCtx)));
  for (uint32_t tid = 0; tid < num_threads; ++tid) {
    ::new (static_cast<void*>(threads_ + tid)) ThreadCtx(
        *this, cost, block_id, num_blocks, tid, num_threads, arch.warpSize);
    warps_[tid / arch.warpSize].memberMask |= LaneMask{1}
                                              << (tid % arch.warpSize);
  }
  block_sync_.mask = ~LaneMask{0};
  block_sync_.target = num_threads;
}

void BlockEngine::setChecker(simcheck::BlockChecker* checker) {
  checker_ = checker;
  if (checker_ != nullptr) {
    checker_->setSharedRange(shared_.base(), shared_.capacity());
    checker_->setGlobalRange(global_->raw(0), global_->capacity());
  }
  for (uint32_t tid = 0; tid < num_threads_; ++tid) {
    threads_[tid].setChecker(checker_);
  }
}

void BlockEngine::setProfiler(simprof::BlockProfiler* profiler) {
  profiler_ = profiler;
  for (uint32_t tid = 0; tid < num_threads_; ++tid) {
    threads_[tid].setProfile(profiler_ != nullptr ? &profiler_->thread(tid)
                                                  : nullptr);
  }
}

void BlockEngine::setFault(const simfault::BlockFaultArm* arm) {
  fault_ = arm;
  if (fault_ != nullptr && fault_->trap) {
    scheduler_.setTrapStep(fault_->trapStep);
  }
}

bool BlockEngine::faultFires(simfault::FaultKind kind) {
  if (fault_ == nullptr) return false;
  switch (kind) {
    case simfault::FaultKind::kLivelock:
      return fault_->livelock &&
             ++fault_livelock_seen_ == fault_->livelockArrival;
    case simfault::FaultKind::kBarrierCorrupt:
      return fault_->barrierCorrupt &&
             ++fault_corrupt_seen_ == fault_->corruptArrival;
    case simfault::FaultKind::kSharingExhausted:
      return fault_->sharingExhausted &&
             ++fault_sharing_seen_ == fault_->sharingBegin;
    default:
      return false;
  }
}

Status BlockEngine::run(const Kernel& kernel) {
  simcheck::BlockChecker* checker = checker_;
  simprof::BlockProfiler* profiler = profiler_;
  for (uint32_t tid = 0; tid < num_threads_; ++tid) {
    ThreadCtx* t = &threads_[tid];
    scheduler_.spawn([&kernel, t, checker, profiler] {
      kernel(*t);
      if (checker != nullptr) checker->onThreadFinish(t->threadId());
      // Close the thread's implicit team frame (and anything an early
      // return left open) at its final timeline position.
      if (profiler != nullptr) profiler->thread(t->threadId()).finish(t->time());
    });
  }
  Status status = scheduler_.run();
  if (checker != nullptr) checker->onRunEnd(status.isOk());
  if (!status.isOk()) return status;

  // Aggregate timing. Lockstep warp issue cost = max over lanes' busy
  // cycles; the SM can issue for warpSchedulersPerSM warps concurrently.
  busy_sum_ = 0;
  max_thread_time_ = 0;
  uint64_t block_busy = 0;
  const uint32_t warp_size = arch_->warpSize;
  for (uint32_t w = 0; w < warps_.size(); ++w) {
    uint64_t warp_busy = 0;
    const uint32_t lo = w * warp_size;
    const uint32_t hi = std::min<uint32_t>(lo + warp_size, num_threads_);
    for (uint32_t tid = lo; tid < hi; ++tid) {
      const ThreadCtx& t = threads_[tid];
      busy_sum_ += t.busy();
      warp_busy = std::max(warp_busy, t.busy());
      max_thread_time_ = std::max(max_thread_time_, t.time());
      counters_.merge(t.counters());
    }
    block_busy += warp_busy;
  }
  block_time_ =
      std::max(max_thread_time_, block_busy / arch_->warpSchedulersPerSM);
  return Status::ok();
}

SyncPoint& BlockEngine::findOrCreateSync(WarpState& warp, LaneMask mask) {
  for (auto& sp : warp.syncs) {
    if (sp->mask == mask) return *sp;
  }
  auto sp = std::make_unique<SyncPoint>();
  sp->mask = mask;
  sp->target = static_cast<uint32_t>(popcount(mask & warp.memberMask));
  warp.syncs.push_back(std::move(sp));
  return *warp.syncs.back();
}

void BlockEngine::arriveAtSync(ThreadCtx& t, SyncPoint& sp) {
  if (fault_ != nullptr) {
    if (faultFires(simfault::FaultKind::kLivelock)) {
      // Injected livelock: spin forever while staying runnable. The
      // deadlock detector needs *no* runnable fiber to fire, so it is
      // blind to this — only the watchdog's step budget can kill it.
      for (;;) scheduler_.yield();
    }
    if (faultFires(simfault::FaultKind::kBarrierCorrupt)) {
      // Injected corrupted arrival: wait at the sync point without
      // counting toward its target. The barrier can never release, so
      // every participant ends up blocked and the deadlock detector
      // reports the stuck fibers.
      for (;;) scheduler_.block(&sp);
    }
  }
  sp.arrived += 1;
  sp.pendingMax = std::max(sp.pendingMax, t.time());
  if (sp.arrived == sp.target) {
    const uint64_t parity = sp.generation & 1;
    sp.releaseTime[parity] = sp.pendingMax;
    sp.generation += 1;
    sp.arrived = 0;
    sp.pendingMax = 0;
    t.alignTimeTo(sp.releaseTime[parity]);
    scheduler_.unblockAll(&sp);
    return;
  }
  const uint64_t my_generation = sp.generation;
  scheduler_.block(&sp);
  t.alignTimeTo(sp.releaseTime[my_generation & 1]);
}

void BlockEngine::warpBarrier(ThreadCtx& t, LaneMask mask, bool charged) {
  // Covers syncWarp and, transitively, shuffle/ballot (both rendezvous
  // here) for convergence-hazard classification.
  t.noteHazard("warp barrier / cross-lane op");
  SIMTOMP_CHECK(laneIn(mask, t.laneId()),
                "warp barrier mask excludes the calling lane");
  WarpState& warp = warps_[t.warpId()];
  SyncPoint& sp = findOrCreateSync(warp, mask);
  SIMTOMP_CHECK(sp.target > 0, "warp barrier with no member lanes");
  t.noteEnter(simprof::Construct::kBarrier);
  t.charge(Counter::kWarpSync, charged ? cost_->warpSync : 0);
  if (checker_ != nullptr) {
    checker_->onSyncArrive(t.threadId(), &sp, t.warpId() * arch_->warpSize,
                           mask & warp.memberMask, t.warpId(),
                           /*is_block=*/false);
  }
  arriveAtSync(t, sp);
  t.noteExit();
}

void BlockEngine::blockBarrier(ThreadCtx& t) {
  t.noteHazard("block barrier");
  t.noteEnter(simprof::Construct::kBarrier);
  t.charge(Counter::kBlockSync, cost_->blockSync);
  if (checker_ != nullptr) {
    checker_->onSyncArrive(t.threadId(), &block_sync_, 0, block_sync_.mask, 0,
                           /*is_block=*/true);
  }
  arriveAtSync(t, block_sync_);
  t.noteExit();
}

BatchPoint& BlockEngine::convergentBatchPoint(ThreadCtx& t, LaneMask mask) {
  WarpState& warp = warps_[t.warpId()];
  for (BatchPoint* bp : warp.batches) {
    if (bp->mask == mask) return *bp;
  }
  BatchPoint* bp = arena_.arena().create<BatchPoint>();
  bp->mask = mask;
  bp->target = static_cast<uint32_t>(popcount(mask & warp.memberMask));
  warp.batches.push_back(bp);
  return *bp;
}

bool BlockEngine::convergentBatchArrive(BatchPoint& bp) {
  bp.arrived += 1;
  if (bp.arrived == bp.target) {
    bp.arrived = 0;
    return true;
  }
  scheduler_.block(&bp);
  return false;
}

void BlockEngine::convergentBatchRelease(BatchPoint& bp) {
  scheduler_.unblockAll(&bp);
}

void ThreadCtx::hazardForbidden(const char* what) {
  throw StatusException(Status::failedPrecondition(
      std::string("convergence fast path executed a hazard (") + what +
      "); the body classification promised none — this is a simulator "
      "bug, not a program bug"));
}

LaneMask BlockEngine::ballot(ThreadCtx& t, bool predicate, LaneMask mask) {
  WarpState& warp = warps_[t.warpId()];
  warp.exchange[t.laneId()] = predicate ? 1 : 0;
  t.charge(Counter::kShuffle, cost_->aluOp);
  warpBarrier(t, mask);
  LaneMask result = 0;
  for (unsigned lane = 0; lane < 64; ++lane) {
    if (laneIn(mask & warp.memberMask, lane) && warp.exchange[lane] != 0) {
      result |= LaneMask{1} << lane;
    }
  }
  warpBarrier(t, mask);
  return result;
}

}  // namespace simtomp::gpusim
